// Package mem implements the instrumented device-memory model that stands in
// for the GPU (and its pynvml/PyTorch-allocator measurements) of the original
// Skipper artifact.
//
// Every tensor the training engine keeps alive on the "device" is charged to
// a Device through a category-tagged allocation. The Device mirrors the
// structure of a CUDA + PyTorch memory stack:
//
//   - a fixed context overhead (the "CUDA context" share in paper Fig. 13),
//   - a caching allocator that rounds requests into bins and retains freed
//     blocks (PyTorch's reserved-vs-allocated distinction),
//   - per-category live/peak accounting of the tensors themselves
//     (activations, input, weights, weight gradients, optimizer state,
//     workspace — the categories of paper Figs. 3c/d and 4a),
//   - an optional hard budget producing ErrOutOfMemory (for the
//     timestep-scaling experiment, Fig. 14, and the edge device, Fig. 15),
//   - an optional swap region with a bandwidth penalty (Jetson Nano, Fig. 15).
package mem

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"skipper/internal/trace"
)

// Category tags the purpose of an allocation, mirroring the tensor taxonomy
// of the paper's memory-breakdown figures.
type Category int

const (
	// Activations are the time-unrolled neural states (U_t, o_t) and layer
	// intermediates saved for the backward pass. This is the category the
	// paper's techniques attack.
	Activations Category = iota
	// Input is the encoded spike input and labels for the current batch.
	Input
	// Weights are the trainable parameters.
	Weights
	// WeightGrads are the parameter gradients.
	WeightGrads
	// Optimizer is optimizer state (Adam moments) plus non-trainable
	// parameters (leak, threshold).
	Optimizer
	// Workspace is transient kernel scratch (im2col buffers).
	Workspace
	// Other is everything else (bookkeeping, SAM spike-sum buffers, ...).
	Other

	numCategories
)

var categoryNames = [...]string{"activations", "input", "weights", "wt gradients", "optimizer", "workspace", "others"}

// String returns the category's display name (matching the paper's legends).
func (c Category) String() string {
	if c < 0 || int(c) >= len(categoryNames) {
		return fmt.Sprintf("Category(%d)", int(c))
	}
	return categoryNames[c]
}

// Categories lists all categories in display order.
func Categories() []Category {
	out := make([]Category, numCategories)
	for i := range out {
		out[i] = Category(i)
	}
	return out
}

// ErrOutOfMemory is returned when an allocation cannot fit within the
// device's budget even after releasing the allocator cache.
var ErrOutOfMemory = errors.New("mem: device out of memory")

// OOMError wraps ErrOutOfMemory with the request details.
type OOMError struct {
	Requested int64
	Budget    int64
	Reserved  int64
	Category  Category
}

func (e *OOMError) Error() string {
	return fmt.Sprintf("mem: device out of memory allocating %d bytes of %s (reserved %d of budget %d)",
		e.Requested, e.Category, e.Reserved, e.Budget)
}

// Unwrap makes errors.Is(err, ErrOutOfMemory) work.
func (e *OOMError) Unwrap() error { return ErrOutOfMemory }

// Config configures a Device.
type Config struct {
	// Budget is the hard capacity in bytes. Zero means unlimited.
	Budget int64
	// ContextOverhead is the fixed context footprint charged up front
	// (the "CUDA context" share). It counts against the budget.
	ContextOverhead int64
	// SwapBytes is extra capacity beyond Budget that allocations may spill
	// into, modeling unified-memory swap on edge devices. Zero disables swap.
	SwapBytes int64
	// SwapPenalty is the relative slowdown per byte held in swap, exposed via
	// SlowdownFactor for the timing model. A value of 3 means touching swap
	// memory is 4x slower than device memory.
	SwapPenalty float64
}

// Device is a category-tracking memory accountant with a caching-allocator
// model. It is safe for concurrent use.
type Device struct {
	mu  sync.Mutex
	cfg Config

	live     [numCategories]int64 // bytes currently allocated per category
	peak     [numCategories]int64 // peak per category
	reserved int64                // bytes obtained from the "driver" (live + cache)
	peakRes  int64
	peakLive int64
	swapped  int64 // bytes currently beyond Budget (in swap)
	peakSwap int64

	cache map[int64]int // freed bins: size -> count
	allocs,
	frees,
	cacheHits,
	oomFlushes int64

	// tracer, when attached, receives a "reserved_high_water" counter event
	// each time peak reserved memory grows by at least traceGrain since the
	// last emitted event (so a trace shows the footprint staircase without an
	// event per allocation). Atomic so SetTracer is race-free against Alloc.
	tracer      atomic.Pointer[trace.Tracer]
	lastEmitted int64 // peakRes at the last event; guarded by mu
}

// traceGrain is the minimum peak-reserved growth between high-water trace
// events.
const traceGrain = 1 << 20

// NewDevice returns a device with the given configuration.
func NewDevice(cfg Config) *Device {
	d := &Device{cfg: cfg, cache: make(map[int64]int)}
	d.reserved = cfg.ContextOverhead
	d.peakRes = d.reserved
	return d
}

// Unlimited returns a device with no budget and no context overhead,
// convenient for pure accounting.
func Unlimited() *Device { return NewDevice(Config{}) }

// SetTracer attaches a span recorder for reserved-memory high-water events.
// Safe to call at any time from any goroutine; nil detaches. Nil-receiver
// safe so callers can wire an optional device unconditionally.
func (d *Device) SetTracer(t *trace.Tracer) {
	if d == nil {
		return
	}
	d.tracer.Store(t)
}

// roundBin rounds a request to its allocator bin, echoing the PyTorch caching
// allocator: small blocks round to 512 B multiples, large blocks (>1 MiB)
// round to 2 MiB multiples.
func roundBin(n int64) int64 {
	if n <= 0 {
		return 0
	}
	const small = 512
	const large = 2 << 20
	if n < 1<<20 {
		return (n + small - 1) / small * small
	}
	return (n + large - 1) / large * large
}

// Block is a live allocation. Release it exactly once.
type Block struct {
	dev  *Device
	cat  Category
	bin  int64
	size int64
	free bool
}

// Size returns the requested (un-rounded) size in bytes.
func (b *Block) Size() int64 { return b.size }

// Release returns the block to the device's allocator cache. Releasing nil
// or an already-released block is a no-op, so deferred cleanup is safe.
func (b *Block) Release() {
	if b == nil || b.free {
		return
	}
	b.free = true
	b.dev.release(b)
}

// Alloc charges size bytes to category cat. The rounded bin is served from
// the allocator cache when possible; otherwise reserved memory grows. When
// the budget would be exceeded the cache is flushed and the allocation
// retried; if it still does not fit (including swap), an *OOMError is
// returned.
func (d *Device) Alloc(cat Category, size int64) (*Block, error) {
	if size < 0 {
		panic(fmt.Sprintf("mem: negative allocation %d", size))
	}
	bin := roundBin(size)
	d.mu.Lock()
	defer d.mu.Unlock()

	d.allocs++
	if n := d.cache[bin]; n > 0 {
		if n == 1 {
			delete(d.cache, bin)
		} else {
			d.cache[bin] = n - 1
		}
		d.cacheHits++
	} else if err := d.reserve(cat, bin); err != nil {
		return nil, err
	}
	d.live[cat] += size
	if d.live[cat] > d.peak[cat] {
		d.peak[cat] = d.live[cat]
	}
	var total int64
	for _, v := range d.live {
		total += v
	}
	if total > d.peakLive {
		d.peakLive = total
	}
	return &Block{dev: d, cat: cat, bin: bin, size: size}, nil
}

// MustAlloc is Alloc that panics on OOM; for call sites where a budget is
// never configured.
func (d *Device) MustAlloc(cat Category, size int64) *Block {
	b, err := d.Alloc(cat, size)
	if err != nil {
		panic(err)
	}
	return b
}

// reserve grows reserved memory by bin bytes, flushing the cache and then
// spilling to swap if needed. Caller holds d.mu.
func (d *Device) reserve(cat Category, bin int64) error {
	capacity := d.cfg.Budget + d.cfg.SwapBytes
	if d.cfg.Budget == 0 {
		capacity = 0 // unlimited
	}
	if capacity != 0 && d.reserved+bin > capacity {
		// Flush cache ("torch.cuda.empty_cache on OOM retry").
		d.flushCacheLocked()
		d.oomFlushes++
	}
	if capacity != 0 && d.reserved+bin > capacity {
		return &OOMError{Requested: bin, Budget: d.cfg.Budget, Reserved: d.reserved, Category: cat}
	}
	d.reserved += bin
	if d.reserved > d.peakRes {
		d.peakRes = d.reserved
		if d.peakRes-d.lastEmitted >= traceGrain {
			if t := d.tracer.Load(); t != nil {
				d.lastEmitted = d.peakRes
				t.Counter(trace.TrackDevice, "reserved_high_water", d.peakRes)
			}
		}
	}
	if d.cfg.Budget != 0 && d.reserved > d.cfg.Budget {
		d.swapped = d.reserved - d.cfg.Budget
		if d.swapped > d.peakSwap {
			d.peakSwap = d.swapped
		}
	}
	return nil
}

func (d *Device) release(b *Block) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.frees++
	d.live[b.cat] -= b.size
	if d.live[b.cat] < 0 {
		panic(fmt.Sprintf("mem: category %s went negative (%d)", b.cat, d.live[b.cat]))
	}
	d.cache[b.bin]++
}

func (d *Device) flushCacheLocked() {
	for bin, n := range d.cache {
		d.reserved -= bin * int64(n)
	}
	if d.cfg.Budget != 0 && d.reserved <= d.cfg.Budget {
		d.swapped = 0
	} else if d.cfg.Budget != 0 {
		d.swapped = d.reserved - d.cfg.Budget
	}
	d.cache = make(map[int64]int)
}

// FlushCache releases all cached blocks back to the "driver", shrinking
// reserved memory (torch.cuda.empty_cache analogue).
func (d *Device) FlushCache() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.flushCacheLocked()
}

// Allocated returns the total live bytes across categories.
func (d *Device) Allocated() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	var t int64
	for _, v := range d.live {
		t += v
	}
	return t
}

// AllocatedBy returns the live bytes in one category.
func (d *Device) AllocatedBy(cat Category) int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.live[cat]
}

// Reserved returns reserved bytes (context + live bins + cached bins).
func (d *Device) Reserved() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.reserved
}

// PeakAllocated returns the peak of total live bytes
// (max_memory_allocated analogue).
func (d *Device) PeakAllocated() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.peakLive
}

// PeakReserved returns the peak reserved bytes
// (max_memory_reserved analogue; what nvidia-smi would show).
func (d *Device) PeakReserved() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.peakRes
}

// PeakBy returns the peak live bytes of one category.
func (d *Device) PeakBy(cat Category) int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.peak[cat]
}

// Swapped returns the bytes currently resident beyond the budget (in swap).
func (d *Device) Swapped() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.swapped
}

// PeakSwapped returns the peak swap residency.
func (d *Device) PeakSwapped() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.peakSwap
}

// SlowdownFactor returns the multiplicative slowdown the timing model should
// apply given the peak swap residency: 1 when no swap was touched, growing
// linearly with the swapped fraction of the budget.
func (d *Device) SlowdownFactor() float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.cfg.Budget == 0 || d.peakSwap == 0 || d.cfg.SwapPenalty == 0 {
		return 1
	}
	frac := float64(d.peakSwap) / float64(d.cfg.Budget)
	return 1 + d.cfg.SwapPenalty*frac
}

// ContextOverhead returns the configured fixed context footprint.
func (d *Device) ContextOverhead() int64 { return d.cfg.ContextOverhead }

// Budget returns the configured budget (0 = unlimited).
func (d *Device) Budget() int64 { return d.cfg.Budget }

// ResetPeaks clears all peak statistics (but not live allocations), so
// measurements can start "after warm-up" as the paper does.
func (d *Device) ResetPeaks() {
	d.mu.Lock()
	defer d.mu.Unlock()
	var total int64
	for i, v := range d.live {
		d.peak[i] = v
		total += v
	}
	d.peakLive = total
	d.peakRes = d.reserved
	d.peakSwap = d.swapped
}

// Stats is a snapshot of the device counters.
type Stats struct {
	Live          [numCategories]int64
	Peak          [numCategories]int64
	Reserved      int64
	PeakReserved  int64
	PeakAllocated int64
	Context       int64
	Allocs        int64
	Frees         int64
	CacheHits     int64
	OOMFlushes    int64
}

// Snapshot returns a copy of the device counters.
func (d *Device) Snapshot() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	var total int64
	for _, v := range d.live {
		total += v
	}
	return Stats{
		Live:          d.live,
		Peak:          d.peak,
		Reserved:      d.reserved,
		PeakReserved:  d.peakRes,
		PeakAllocated: d.peakLive,
		Context:       d.cfg.ContextOverhead,
		Allocs:        d.allocs,
		Frees:         d.frees,
		CacheHits:     d.cacheHits,
		OOMFlushes:    d.oomFlushes,
	}
}

// Breakdown renders the peak per-category shares as a human-readable line,
// largest first — the textual analogue of the paper's stacked bars.
func (s Stats) Breakdown() string {
	type kv struct {
		c Category
		v int64
	}
	items := make([]kv, 0, numCategories)
	var total int64
	for i, v := range s.Peak {
		items = append(items, kv{Category(i), v})
		total += v
	}
	sort.Slice(items, func(i, j int) bool { return items[i].v > items[j].v })
	var b strings.Builder
	for i, it := range items {
		if it.v == 0 {
			continue
		}
		if i > 0 && b.Len() > 0 {
			b.WriteString(", ")
		}
		pct := 0.0
		if total > 0 {
			pct = 100 * float64(it.v) / float64(total)
		}
		fmt.Fprintf(&b, "%s %s (%.0f%%)", it.c, FormatBytes(it.v), pct)
	}
	return b.String()
}

// FormatBytes renders n using binary units.
func FormatBytes(n int64) string {
	const (
		kib = 1 << 10
		mib = 1 << 20
		gib = 1 << 30
	)
	switch {
	case n >= gib:
		return fmt.Sprintf("%.2f GiB", float64(n)/float64(gib))
	case n >= mib:
		return fmt.Sprintf("%.2f MiB", float64(n)/float64(mib))
	case n >= kib:
		return fmt.Sprintf("%.2f KiB", float64(n)/float64(kib))
	default:
		return fmt.Sprintf("%d B", n)
	}
}
