package mem

import (
	"errors"
	"sync"
	"testing"
	"testing/quick"
)

func TestAllocFreeAccounting(t *testing.T) {
	d := Unlimited()
	b1 := d.MustAlloc(Activations, 1000)
	b2 := d.MustAlloc(Weights, 500)
	if got := d.Allocated(); got != 1500 {
		t.Fatalf("Allocated = %d, want 1500", got)
	}
	if got := d.AllocatedBy(Activations); got != 1000 {
		t.Fatalf("AllocatedBy(Activations) = %d, want 1000", got)
	}
	b1.Release()
	if got := d.Allocated(); got != 500 {
		t.Fatalf("Allocated after release = %d, want 500", got)
	}
	if got := d.PeakAllocated(); got != 1500 {
		t.Fatalf("PeakAllocated = %d, want 1500", got)
	}
	b2.Release()
	if got := d.Allocated(); got != 0 {
		t.Fatalf("Allocated after all released = %d, want 0", got)
	}
}

func TestDoubleReleaseIsNoOp(t *testing.T) {
	d := Unlimited()
	b := d.MustAlloc(Other, 64)
	b.Release()
	b.Release() // must not panic or double-count
	var nilBlock *Block
	nilBlock.Release() // nil release must be safe
	if got := d.Allocated(); got != 0 {
		t.Fatalf("Allocated = %d, want 0", got)
	}
}

func TestPeakPerCategory(t *testing.T) {
	d := Unlimited()
	b1 := d.MustAlloc(Activations, 100)
	b2 := d.MustAlloc(Activations, 200)
	b1.Release()
	b3 := d.MustAlloc(Activations, 50)
	if got := d.PeakBy(Activations); got != 300 {
		t.Fatalf("PeakBy = %d, want 300", got)
	}
	if got := d.AllocatedBy(Activations); got != 250 {
		t.Fatalf("AllocatedBy = %d, want 250", got)
	}
	b2.Release()
	b3.Release()
}

func TestCachingAllocatorReuse(t *testing.T) {
	d := Unlimited()
	b := d.MustAlloc(Activations, 4096)
	r0 := d.Reserved()
	b.Release()
	// Reserved must not shrink on free (blocks are cached).
	if d.Reserved() != r0 {
		t.Fatalf("Reserved shrank on free: %d -> %d", r0, d.Reserved())
	}
	// Same-bin realloc hits the cache without growing reserved.
	b2 := d.MustAlloc(Input, 4000) // rounds to the same 4096 bin
	if d.Reserved() != r0 {
		t.Fatalf("Reserved grew despite cache: %d -> %d", r0, d.Reserved())
	}
	st := d.Snapshot()
	if st.CacheHits != 1 {
		t.Fatalf("CacheHits = %d, want 1", st.CacheHits)
	}
	b2.Release()
	d.FlushCache()
	if d.Reserved() != 0 {
		t.Fatalf("Reserved after flush = %d, want 0", d.Reserved())
	}
}

func TestRoundBin(t *testing.T) {
	cases := []struct{ in, want int64 }{
		{0, 0},
		{1, 512},
		{512, 512},
		{513, 1024},
		{1 << 20, 2 << 20},       // 1 MiB rounds to a 2 MiB large bin
		{(1 << 20) - 1, 1 << 20}, // just under 1 MiB stays small-binned
		{3 << 20, 4 << 20},
	}
	for _, c := range cases {
		if got := roundBin(c.in); got != c.want {
			t.Fatalf("roundBin(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestBudgetOOM(t *testing.T) {
	d := NewDevice(Config{Budget: 10 << 10})
	b, err := d.Alloc(Activations, 8<<10)
	if err != nil {
		t.Fatalf("first alloc failed: %v", err)
	}
	_, err = d.Alloc(Activations, 8<<10)
	if !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("want ErrOutOfMemory, got %v", err)
	}
	var oom *OOMError
	if !errors.As(err, &oom) {
		t.Fatalf("want *OOMError, got %T", err)
	}
	if oom.Category != Activations {
		t.Fatalf("OOM category = %v", oom.Category)
	}
	b.Release()
	// After release, the cache is flushed on demand and the alloc succeeds.
	b2, err := d.Alloc(Activations, 8<<10)
	if err != nil {
		t.Fatalf("alloc after free failed: %v", err)
	}
	b2.Release()
}

func TestContextOverheadCountsAgainstBudget(t *testing.T) {
	d := NewDevice(Config{Budget: 10 << 10, ContextOverhead: 6 << 10})
	if d.Reserved() != 6<<10 {
		t.Fatalf("Reserved = %d, want context 6144", d.Reserved())
	}
	if _, err := d.Alloc(Other, 5<<10); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("alloc should OOM against context+budget, got %v", err)
	}
	b, err := d.Alloc(Other, 3<<10)
	if err != nil {
		t.Fatalf("small alloc failed: %v", err)
	}
	b.Release()
}

func TestSwapSpill(t *testing.T) {
	d := NewDevice(Config{Budget: 4 << 10, SwapBytes: 8 << 10, SwapPenalty: 3})
	b1 := d.MustAlloc(Activations, 4<<10)
	if d.Swapped() != 0 {
		t.Fatalf("Swapped = %d, want 0", d.Swapped())
	}
	b2, err := d.Alloc(Activations, 4<<10)
	if err != nil {
		t.Fatalf("spill alloc failed: %v", err)
	}
	if d.Swapped() != 4<<10 {
		t.Fatalf("Swapped = %d, want 4096", d.Swapped())
	}
	if f := d.SlowdownFactor(); f != 4 {
		t.Fatalf("SlowdownFactor = %v, want 4 (1 + 3*1.0)", f)
	}
	// Beyond budget+swap OOMs.
	if _, err := d.Alloc(Activations, 8<<10); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("want OOM beyond swap, got %v", err)
	}
	b1.Release()
	b2.Release()
}

func TestSlowdownFactorNoSwap(t *testing.T) {
	d := NewDevice(Config{Budget: 1 << 20, SwapBytes: 1 << 20, SwapPenalty: 3})
	b := d.MustAlloc(Weights, 100)
	b.Release()
	if f := d.SlowdownFactor(); f != 1 {
		t.Fatalf("SlowdownFactor = %v, want 1", f)
	}
}

func TestResetPeaks(t *testing.T) {
	d := Unlimited()
	b := d.MustAlloc(Activations, 1000)
	b.Release()
	if d.PeakAllocated() != 1000 {
		t.Fatal("precondition")
	}
	d.ResetPeaks()
	if d.PeakAllocated() != 0 {
		t.Fatalf("PeakAllocated after reset = %d, want 0", d.PeakAllocated())
	}
	keep := d.MustAlloc(Weights, 300)
	d.ResetPeaks()
	if d.PeakAllocated() != 300 || d.PeakBy(Weights) != 300 {
		t.Fatalf("ResetPeaks should seed peaks with live values: %d", d.PeakAllocated())
	}
	keep.Release()
}

func TestSnapshotAndBreakdown(t *testing.T) {
	d := Unlimited()
	a := d.MustAlloc(Activations, 3<<20)
	w := d.MustAlloc(Weights, 1<<20)
	st := d.Snapshot()
	if st.Peak[Activations] != 3<<20 || st.Peak[Weights] != 1<<20 {
		t.Fatalf("snapshot peaks wrong: %+v", st.Peak)
	}
	s := st.Breakdown()
	if s == "" {
		t.Fatal("Breakdown empty")
	}
	// activations should be listed before weights (larger share first)
	if len(s) < 11 || s[:11] != "activations" {
		t.Fatalf("Breakdown should lead with activations: %q", s)
	}
	a.Release()
	w.Release()
}

func TestFormatBytes(t *testing.T) {
	cases := []struct {
		in   int64
		want string
	}{
		{100, "100 B"},
		{2048, "2.00 KiB"},
		{3 << 20, "3.00 MiB"},
		{5 << 30, "5.00 GiB"},
	}
	for _, c := range cases {
		if got := FormatBytes(c.in); got != c.want {
			t.Fatalf("FormatBytes(%d) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestCategoryString(t *testing.T) {
	if Activations.String() != "activations" {
		t.Fatalf("Activations.String() = %q", Activations.String())
	}
	if Category(99).String() == "" {
		t.Fatal("unknown category should render something")
	}
	if len(Categories()) != int(numCategories) {
		t.Fatal("Categories() wrong length")
	}
}

func TestNegativeAllocPanics(t *testing.T) {
	d := Unlimited()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	d.MustAlloc(Other, -1)
}

func TestConcurrentAllocFree(t *testing.T) {
	d := Unlimited()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				b := d.MustAlloc(Category(i%int(numCategories)), int64(64+i))
				b.Release()
			}
		}(g)
	}
	wg.Wait()
	if got := d.Allocated(); got != 0 {
		t.Fatalf("Allocated after concurrent churn = %d, want 0", got)
	}
}

// Property: for any sequence of alloc/free pairs, allocated returns to zero
// and peak >= every live total observed.
func TestAllocFreeBalanceProperty(t *testing.T) {
	f := func(sizes []uint16) bool {
		d := Unlimited()
		blocks := make([]*Block, 0, len(sizes))
		var live, maxLive int64
		for _, s := range sizes {
			b := d.MustAlloc(Activations, int64(s))
			blocks = append(blocks, b)
			live += int64(s)
			if live > maxLive {
				maxLive = live
			}
		}
		if d.PeakAllocated() != maxLive {
			return false
		}
		for _, b := range blocks {
			b.Release()
		}
		return d.Allocated() == 0 && d.PeakAllocated() == maxLive
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: reserved never decreases except via FlushCache, and reserved >=
// live + context at all times.
func TestReservedInvariantProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		d := NewDevice(Config{ContextOverhead: 1 << 10})
		var blocks []*Block
		prevReserved := d.Reserved()
		for _, op := range ops {
			if op%3 != 0 || len(blocks) == 0 {
				b := d.MustAlloc(Other, int64(op)*16+1)
				blocks = append(blocks, b)
			} else {
				blocks[len(blocks)-1].Release()
				blocks = blocks[:len(blocks)-1]
			}
			r := d.Reserved()
			if r < prevReserved {
				return false // reserved shrank without a flush
			}
			prevReserved = r
			if r < d.Allocated()+d.ContextOverhead() {
				return false // reserved must cover live + context
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestFlushCacheKeepsLiveBlocks(t *testing.T) {
	d := Unlimited()
	live := d.MustAlloc(Weights, 2048)
	freed := d.MustAlloc(Activations, 4096)
	freed.Release()
	d.FlushCache()
	// Live allocations survive a flush; only cached bins are returned.
	if d.Allocated() != 2048 {
		t.Fatalf("Allocated = %d after flush, want 2048", d.Allocated())
	}
	if d.Reserved() != 2048 {
		t.Fatalf("Reserved = %d after flush, want 2048 (live bin only)", d.Reserved())
	}
	live.Release()
}

func TestPeakSwappedTracksHighWater(t *testing.T) {
	d := NewDevice(Config{Budget: 4 << 10, SwapBytes: 8 << 10, SwapPenalty: 1})
	a := d.MustAlloc(Activations, 6<<10) // 2 KiB into swap
	if d.PeakSwapped() < 2<<10 {
		t.Fatalf("PeakSwapped = %d", d.PeakSwapped())
	}
	a.Release()
	d.FlushCache()
	if d.Swapped() != 0 {
		t.Fatalf("Swapped = %d after flush, want 0", d.Swapped())
	}
	// Peak persists after the pressure is gone.
	if d.PeakSwapped() < 2<<10 {
		t.Fatal("PeakSwapped should keep the high-water mark")
	}
}

func TestBlockSize(t *testing.T) {
	d := Unlimited()
	b := d.MustAlloc(Other, 777)
	if b.Size() != 777 {
		t.Fatalf("Size = %d", b.Size())
	}
	b.Release()
}
