package opt

import (
	"math"
	"testing"

	"skipper/internal/layers"
	"skipper/internal/tensor"
)

// quadParams builds one scalar parameter at value x with gradient g.
func quadParams(x, g float32) []layers.Param {
	w := tensor.FromSlice([]float32{x}, 1)
	gr := tensor.FromSlice([]float32{g}, 1)
	return []layers.Param{{Name: "w", W: w, G: gr}}
}

func TestSGDStep(t *testing.T) {
	ps := quadParams(1.0, 0.5)
	s := NewSGD(ps, 0.1, 0)
	s.Step()
	if got := ps[0].W.Data[0]; math.Abs(float64(got)-0.95) > 1e-6 {
		t.Fatalf("w = %v, want 0.95", got)
	}
	if s.StateBytes() != 0 {
		t.Fatal("momentum-free SGD should carry no state")
	}
}

func TestSGDMomentumAccumulates(t *testing.T) {
	ps := quadParams(0, 1)
	s := NewSGD(ps, 0.1, 0.9)
	s.Step() // v=1, w=-0.1
	s.Step() // v=1.9, w=-0.29
	if got := ps[0].W.Data[0]; math.Abs(float64(got)+0.29) > 1e-6 {
		t.Fatalf("w = %v, want -0.29", got)
	}
	if s.StateBytes() != 4 {
		t.Fatalf("StateBytes = %d, want 4", s.StateBytes())
	}
}

func TestSGDWeightDecay(t *testing.T) {
	ps := quadParams(1.0, 0)
	s := NewSGD(ps, 0.1, 0)
	s.WeightDecay = 0.5
	s.Step()
	if got := ps[0].W.Data[0]; math.Abs(float64(got)-0.95) > 1e-6 {
		t.Fatalf("w = %v, want 0.95 (decay only)", got)
	}
}

func TestAdamFirstStepIsLR(t *testing.T) {
	// With bias correction, Adam's first step is ≈ lr·sign(g).
	ps := quadParams(0, 0.3)
	a := NewAdam(ps, 0.01)
	a.Step()
	if got := ps[0].W.Data[0]; math.Abs(float64(got)+0.01) > 1e-4 {
		t.Fatalf("first Adam step = %v, want ≈ -0.01", got)
	}
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	// Minimise f(w) = (w-3)², grad = 2(w-3).
	w := tensor.FromSlice([]float32{0}, 1)
	g := tensor.New(1)
	ps := []layers.Param{{Name: "w", W: w, G: g}}
	a := NewAdam(ps, 0.1)
	for i := 0; i < 500; i++ {
		g.Data[0] = 2 * (w.Data[0] - 3)
		a.Step()
	}
	if math.Abs(float64(w.Data[0])-3) > 0.05 {
		t.Fatalf("Adam did not converge: w = %v", w.Data[0])
	}
}

func TestAdamStateBytes(t *testing.T) {
	w := tensor.New(10)
	g := tensor.New(10)
	a := NewAdam([]layers.Param{{W: w, G: g}}, 0.01)
	if a.StateBytes() != 2*40 {
		t.Fatalf("StateBytes = %d, want 80 (two moments)", a.StateBytes())
	}
}

func TestNewByName(t *testing.T) {
	ps := quadParams(0, 0)
	for _, name := range []string{"", "adam", "sgd"} {
		o, err := New(name, ps, 0.01)
		if err != nil || o == nil {
			t.Fatalf("New(%q): %v", name, err)
		}
	}
	if _, err := New("nope", ps, 0.01); err == nil {
		t.Fatal("unknown optimizer must error")
	}
}

func TestGradClip(t *testing.T) {
	g := tensor.FromSlice([]float32{3, 4}, 2) // norm 5
	ps := []layers.Param{{W: tensor.New(2), G: g}}
	norm := GradClip(ps, 1)
	if math.Abs(float64(norm)-5) > 1e-5 {
		t.Fatalf("pre-clip norm = %v", norm)
	}
	if got := tensor.Norm2(g); math.Abs(float64(got)-1) > 1e-5 {
		t.Fatalf("post-clip norm = %v, want 1", got)
	}
	// No-op when within bounds.
	norm2 := GradClip(ps, 10)
	if math.Abs(float64(norm2)-1) > 1e-5 || math.Abs(float64(tensor.Norm2(g))-1) > 1e-5 {
		t.Fatal("GradClip should be a no-op within bounds")
	}
	// maxNorm <= 0 disables clipping.
	GradClip(ps, 0)
	if math.Abs(float64(tensor.Norm2(g))-1) > 1e-5 {
		t.Fatal("GradClip(0) must not clip")
	}
}
