package opt

import (
	"math"
	"testing"

	"skipper/internal/layers"
	"skipper/internal/tensor"
)

// quadParams builds one scalar parameter at value x with gradient g.
func quadParams(x, g float32) []layers.Param {
	w := tensor.FromSlice([]float32{x}, 1)
	gr := tensor.FromSlice([]float32{g}, 1)
	return []layers.Param{{Name: "w", W: w, G: gr}}
}

func TestSGDStep(t *testing.T) {
	ps := quadParams(1.0, 0.5)
	s := NewSGD(ps, 0.1, 0)
	s.Step()
	if got := ps[0].W.Data[0]; math.Abs(float64(got)-0.95) > 1e-6 {
		t.Fatalf("w = %v, want 0.95", got)
	}
	if s.StateBytes() != 0 {
		t.Fatal("momentum-free SGD should carry no state")
	}
}

func TestSGDMomentumAccumulates(t *testing.T) {
	ps := quadParams(0, 1)
	s := NewSGD(ps, 0.1, 0.9)
	s.Step() // v=1, w=-0.1
	s.Step() // v=1.9, w=-0.29
	if got := ps[0].W.Data[0]; math.Abs(float64(got)+0.29) > 1e-6 {
		t.Fatalf("w = %v, want -0.29", got)
	}
	if s.StateBytes() != 4 {
		t.Fatalf("StateBytes = %d, want 4", s.StateBytes())
	}
}

func TestSGDWeightDecay(t *testing.T) {
	ps := quadParams(1.0, 0)
	s := NewSGD(ps, 0.1, 0)
	s.WeightDecay = 0.5
	s.Step()
	if got := ps[0].W.Data[0]; math.Abs(float64(got)-0.95) > 1e-6 {
		t.Fatalf("w = %v, want 0.95 (decay only)", got)
	}
}

func TestAdamFirstStepIsLR(t *testing.T) {
	// With bias correction, Adam's first step is ≈ lr·sign(g).
	ps := quadParams(0, 0.3)
	a := NewAdam(ps, 0.01)
	a.Step()
	if got := ps[0].W.Data[0]; math.Abs(float64(got)+0.01) > 1e-4 {
		t.Fatalf("first Adam step = %v, want ≈ -0.01", got)
	}
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	// Minimise f(w) = (w-3)², grad = 2(w-3).
	w := tensor.FromSlice([]float32{0}, 1)
	g := tensor.New(1)
	ps := []layers.Param{{Name: "w", W: w, G: g}}
	a := NewAdam(ps, 0.1)
	for i := 0; i < 500; i++ {
		g.Data[0] = 2 * (w.Data[0] - 3)
		a.Step()
	}
	if math.Abs(float64(w.Data[0])-3) > 0.05 {
		t.Fatalf("Adam did not converge: w = %v", w.Data[0])
	}
}

func TestAdamStateBytes(t *testing.T) {
	w := tensor.New(10)
	g := tensor.New(10)
	a := NewAdam([]layers.Param{{W: w, G: g}}, 0.01)
	if a.StateBytes() != 2*40 {
		t.Fatalf("StateBytes = %d, want 80 (two moments)", a.StateBytes())
	}
}

func TestNewByName(t *testing.T) {
	ps := quadParams(0, 0)
	for _, name := range []string{"", "adam", "sgd"} {
		o, err := New(name, ps, 0.01)
		if err != nil || o == nil {
			t.Fatalf("New(%q): %v", name, err)
		}
	}
	if _, err := New("nope", ps, 0.01); err == nil {
		t.Fatal("unknown optimizer must error")
	}
}

// TestStateTensorRoundTrip is the checkpoint/resume contract: capturing an
// optimizer's state tensors plus step counter and restoring them into a
// fresh optimizer makes the next Step bit-identical.
func TestStateTensorRoundTrip(t *testing.T) {
	run := func(restore bool) float32 {
		ps := quadParams(1.0, 0.5)
		a := NewAdam(ps, 0.01)
		for i := 0; i < 3; i++ {
			ps[0].G.Data[0] = 0.5
			a.Step()
		}
		if restore {
			// Capture, then restore into a freshly built optimizer over a
			// parameter set frozen at the same weights.
			var snap []tensor.Named
			for _, s := range a.StateTensors() {
				snap = append(snap, tensor.Named{Name: s.Name, T: s.T.Clone()})
			}
			step := a.StepCount()
			ps2 := quadParams(ps[0].W.Data[0], 0.5)
			b := NewAdam(ps2, 0.01)
			if err := tensor.CopyNamed(b.StateTensors(), snap); err != nil {
				t.Fatal(err)
			}
			b.SetStepCount(step)
			b.Step()
			return ps2[0].W.Data[0]
		}
		ps[0].G.Data[0] = 0.5
		a.Step()
		return ps[0].W.Data[0]
	}
	if direct, resumed := run(false), run(true); direct != resumed {
		t.Fatalf("restored Adam diverged: %v vs %v", direct, resumed)
	}
}

func TestSGDStateTensors(t *testing.T) {
	ps := quadParams(0, 1)
	s := NewSGD(ps, 0.1, 0.9)
	s.Step()
	st := s.StateTensors()
	if len(st) != 1 || st[0].Name != "sgd.vel.w" {
		t.Fatalf("StateTensors = %+v, want one sgd.vel.w entry", st)
	}
	if st[0].T.Data[0] != 1 {
		t.Fatalf("velocity = %v, want 1", st[0].T.Data[0])
	}
	// Momentum-free SGD exposes no state, and step counts are inert.
	plain := NewSGD(quadParams(0, 1), 0.1, 0)
	if len(plain.StateTensors()) != 0 || plain.StepCount() != 0 {
		t.Fatal("momentum-free SGD must carry no state")
	}
	plain.SetStepCount(7)
	if plain.StepCount() != 0 {
		t.Fatal("SGD step count is not persistent")
	}
}

func TestCopyNamedStrictness(t *testing.T) {
	a := tensor.Named{Name: "a", T: tensor.New(2)}
	b := tensor.Named{Name: "b", T: tensor.New(2)}
	if err := tensor.CopyNamed([]tensor.Named{a}, []tensor.Named{a, b}); err == nil {
		t.Fatal("count mismatch must error")
	}
	if err := tensor.CopyNamed([]tensor.Named{a}, []tensor.Named{b}); err == nil {
		t.Fatal("name mismatch must error")
	}
	wrong := tensor.Named{Name: "a", T: tensor.New(3)}
	if err := tensor.CopyNamed([]tensor.Named{a}, []tensor.Named{wrong}); err == nil {
		t.Fatal("shape mismatch must error")
	}
}

func TestGradClip(t *testing.T) {
	g := tensor.FromSlice([]float32{3, 4}, 2) // norm 5
	ps := []layers.Param{{W: tensor.New(2), G: g}}
	norm := GradClip(ps, 1)
	if math.Abs(float64(norm)-5) > 1e-5 {
		t.Fatalf("pre-clip norm = %v", norm)
	}
	if got := tensor.Norm2(g); math.Abs(float64(got)-1) > 1e-5 {
		t.Fatalf("post-clip norm = %v, want 1", got)
	}
	// No-op when within bounds.
	norm2 := GradClip(ps, 10)
	if math.Abs(float64(norm2)-1) > 1e-5 || math.Abs(float64(tensor.Norm2(g))-1) > 1e-5 {
		t.Fatal("GradClip should be a no-op within bounds")
	}
	// maxNorm <= 0 disables clipping.
	GradClip(ps, 0)
	if math.Abs(float64(tensor.Norm2(g))-1) > 1e-5 {
		t.Fatal("GradClip(0) must not clip")
	}
}
