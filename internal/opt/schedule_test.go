package opt

import (
	"math"
	"testing"
)

func TestConstantSchedule(t *testing.T) {
	s := Constant{Rate: 0.01}
	if s.LR(1) != 0.01 || s.LR(100) != 0.01 {
		t.Fatal("constant schedule varies")
	}
	if s.Name() != "constant" {
		t.Fatal("name")
	}
}

func TestStepDecay(t *testing.T) {
	s := StepDecay{Base: 1, Gamma: 0.1, Every: 3}
	cases := map[int]float32{1: 1, 3: 1, 4: 0.1, 6: 0.1, 7: 0.01}
	for epoch, want := range cases {
		if got := s.LR(epoch); math.Abs(float64(got-want)) > 1e-6 {
			t.Fatalf("LR(%d) = %v, want %v", epoch, got, want)
		}
	}
	// Defaults: gamma 0.5 every 10.
	d := StepDecay{Base: 1}
	if d.LR(11) != 0.5 {
		t.Fatalf("default step decay LR(11) = %v", d.LR(11))
	}
	if d.LR(0) != 1 {
		t.Fatal("epoch clamp broken")
	}
}

func TestCosineSchedule(t *testing.T) {
	s := Cosine{Base: 1, Min: 0.1, Period: 11}
	if got := s.LR(1); math.Abs(float64(got)-1) > 1e-6 {
		t.Fatalf("cosine start = %v", got)
	}
	if got := s.LR(11); math.Abs(float64(got)-0.1) > 1e-6 {
		t.Fatalf("cosine end = %v", got)
	}
	if got := s.LR(6); math.Abs(float64(got)-0.55) > 1e-6 {
		t.Fatalf("cosine midpoint = %v, want 0.55", got)
	}
	if got := s.LR(50); got != 0.1 {
		t.Fatalf("cosine past period = %v", got)
	}
	// Monotone non-increasing over the period.
	prev := s.LR(1)
	for e := 2; e <= 11; e++ {
		cur := s.LR(e)
		if cur > prev+1e-6 {
			t.Fatalf("cosine increased at epoch %d", e)
		}
		prev = cur
	}
	one := Cosine{Base: 1, Min: 0, Period: 1}
	if one.LR(1) != 0 {
		t.Fatalf("period-1 cosine should land at Min, got %v", one.LR(1))
	}
}

func TestApplySchedule(t *testing.T) {
	ps := quadParams(0, 0)
	a := NewAdam(ps, 0.5)
	if err := ApplySchedule(a, StepDecay{Base: 1, Gamma: 0.5, Every: 1}, 2); err != nil {
		t.Fatal(err)
	}
	if a.LR != 0.5 {
		t.Fatalf("Adam LR = %v after schedule", a.LR)
	}
	s := NewSGD(ps, 0.5, 0)
	if err := ApplySchedule(s, Constant{Rate: 0.25}, 1); err != nil {
		t.Fatal(err)
	}
	if s.LR != 0.25 {
		t.Fatalf("SGD LR = %v after schedule", s.LR)
	}
}
