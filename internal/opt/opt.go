// Package opt implements the optimizers used in the paper's evaluation:
// Adam (the paper's choice, whose two moment buffers make optimizer state 3×
// the weight footprint counted in the memory-breakdown figures) and SGD with
// momentum as a lighter alternative.
package opt

import (
	"fmt"
	"math"

	"skipper/internal/layers"
	"skipper/internal/tensor"
)

// Optimizer updates network parameters from their accumulated gradients.
type Optimizer interface {
	// Step applies one update and advances the internal step counter.
	Step()
	// StateBytes reports the optimizer-state footprint for the memory model.
	StateBytes() int64
	// Name identifies the optimizer.
	Name() string
	// StateTensors exposes the persistent state buffers (aliased, not
	// copied) so a checkpoint layer can capture and restore them.
	StateTensors() []tensor.Named
	// StepCount reports how many Step calls have been applied (the Adam
	// bias-correction counter; 0 for stateless-in-time optimizers).
	StepCount() int
	// SetStepCount restores the step counter on resume.
	SetStepCount(n int)
}

// Adam is the Adam optimizer (Kingma & Ba) over a parameter set.
type Adam struct {
	LR          float32
	Beta1       float32
	Beta2       float32
	Eps         float32
	WeightDecay float32

	params []layers.Param
	m, v   []*tensor.Tensor
	step   int
}

// NewAdam returns an Adam optimizer with the usual defaults
// (β1=0.9, β2=0.999, ε=1e-8) for the given parameters.
func NewAdam(params []layers.Param, lr float32) *Adam {
	a := &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8, params: params}
	a.m = make([]*tensor.Tensor, len(params))
	a.v = make([]*tensor.Tensor, len(params))
	for i, p := range params {
		a.m[i] = tensor.New(p.W.Shape()...)
		a.v[i] = tensor.New(p.W.Shape()...)
	}
	return a
}

// Name implements Optimizer.
func (a *Adam) Name() string { return "adam" }

// Step implements Optimizer.
func (a *Adam) Step() {
	a.step++
	bc1 := 1 - float32(math.Pow(float64(a.Beta1), float64(a.step)))
	bc2 := 1 - float32(math.Pow(float64(a.Beta2), float64(a.step)))
	for i, p := range a.params {
		m, v := a.m[i], a.v[i]
		for j := range p.W.Data {
			g := p.G.Data[j]
			if a.WeightDecay != 0 {
				g += a.WeightDecay * p.W.Data[j]
			}
			m.Data[j] = a.Beta1*m.Data[j] + (1-a.Beta1)*g
			v.Data[j] = a.Beta2*v.Data[j] + (1-a.Beta2)*g*g
			mh := m.Data[j] / bc1
			vh := v.Data[j] / bc2
			p.W.Data[j] -= a.LR * mh / (float32(math.Sqrt(float64(vh))) + a.Eps)
		}
	}
}

// StateBytes implements Optimizer: two moment buffers.
func (a *Adam) StateBytes() int64 {
	var b int64
	for _, m := range a.m {
		b += 2 * m.Bytes()
	}
	return b
}

// StateTensors implements Optimizer: the first and second moment buffers,
// named after their parameters.
func (a *Adam) StateTensors() []tensor.Named {
	ts := make([]tensor.Named, 0, 2*len(a.params))
	for i, p := range a.params {
		ts = append(ts,
			tensor.Named{Name: "adam.m." + p.Name, T: a.m[i]},
			tensor.Named{Name: "adam.v." + p.Name, T: a.v[i]},
		)
	}
	return ts
}

// StepCount implements Optimizer.
func (a *Adam) StepCount() int { return a.step }

// SetStepCount implements Optimizer.
func (a *Adam) SetStepCount(n int) { a.step = n }

// CurrentLR reports the rate the next Step will use.
func (a *Adam) CurrentLR() float32 { return a.LR }

// SGD is stochastic gradient descent with classical momentum.
type SGD struct {
	LR          float32
	Momentum    float32
	WeightDecay float32

	params []layers.Param
	vel    []*tensor.Tensor
}

// NewSGD returns an SGD optimizer with the given learning rate and momentum.
func NewSGD(params []layers.Param, lr, momentum float32) *SGD {
	s := &SGD{LR: lr, Momentum: momentum, params: params}
	if momentum != 0 {
		s.vel = make([]*tensor.Tensor, len(params))
		for i, p := range params {
			s.vel[i] = tensor.New(p.W.Shape()...)
		}
	}
	return s
}

// Name implements Optimizer.
func (s *SGD) Name() string { return "sgd" }

// Step implements Optimizer.
func (s *SGD) Step() {
	for i, p := range s.params {
		for j := range p.W.Data {
			g := p.G.Data[j]
			if s.WeightDecay != 0 {
				g += s.WeightDecay * p.W.Data[j]
			}
			if s.vel != nil {
				s.vel[i].Data[j] = s.Momentum*s.vel[i].Data[j] + g
				g = s.vel[i].Data[j]
			}
			p.W.Data[j] -= s.LR * g
		}
	}
}

// StateBytes implements Optimizer.
func (s *SGD) StateBytes() int64 {
	var b int64
	for _, v := range s.vel {
		b += v.Bytes()
	}
	return b
}

// StateTensors implements Optimizer: the velocity buffers (empty without
// momentum).
func (s *SGD) StateTensors() []tensor.Named {
	ts := make([]tensor.Named, 0, len(s.vel))
	for i, p := range s.params {
		if s.vel == nil {
			break
		}
		ts = append(ts, tensor.Named{Name: "sgd.vel." + p.Name, T: s.vel[i]})
	}
	return ts
}

// StepCount implements Optimizer: SGD has no time-dependent correction.
func (s *SGD) StepCount() int { return 0 }

// SetStepCount implements Optimizer (no-op).
func (s *SGD) SetStepCount(int) {}

// CurrentLR reports the rate the next Step will use.
func (s *SGD) CurrentLR() float32 { return s.LR }

// New constructs an optimizer by name ("adam" or "sgd").
func New(name string, params []layers.Param, lr float32) (Optimizer, error) {
	switch name {
	case "", "adam":
		return NewAdam(params, lr), nil
	case "sgd":
		return NewSGD(params, lr, 0.9), nil
	default:
		return nil, fmt.Errorf("opt: unknown optimizer %q", name)
	}
}

// GradClip scales all gradients down so their global L2 norm is at most
// maxNorm; a no-op when maxNorm <= 0 or the norm is already within bounds.
// Returns the pre-clip norm.
func GradClip(params []layers.Param, maxNorm float32) float32 {
	var sq float64
	for _, p := range params {
		n := tensor.Norm2(p.G)
		sq += float64(n) * float64(n)
	}
	norm := float32(math.Sqrt(sq))
	if maxNorm > 0 && norm > maxNorm {
		scale := maxNorm / norm
		for _, p := range params {
			tensor.Scale(p.G, p.G, scale)
		}
	}
	return norm
}
