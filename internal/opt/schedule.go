package opt

import (
	"fmt"
	"math"
)

// Schedule maps an epoch index (1-based) to a learning rate. The trainer
// applies it at the start of each epoch.
type Schedule interface {
	// LR returns the learning rate for the given epoch.
	LR(epoch int) float32
	// Name identifies the schedule.
	Name() string
}

// Constant keeps a fixed rate.
type Constant struct{ Rate float32 }

// LR implements Schedule.
func (c Constant) LR(int) float32 { return c.Rate }

// Name implements Schedule.
func (c Constant) Name() string { return "constant" }

// StepDecay multiplies the base rate by Gamma every Every epochs — the
// schedule typically paired with the hybrid SNN training recipe.
type StepDecay struct {
	Base  float32
	Gamma float32 // 0 means 0.5
	Every int     // 0 means 10
}

// LR implements Schedule.
func (s StepDecay) LR(epoch int) float32 {
	gamma := s.Gamma
	if gamma == 0 {
		gamma = 0.5
	}
	every := s.Every
	if every == 0 {
		every = 10
	}
	if epoch < 1 {
		epoch = 1
	}
	k := (epoch - 1) / every
	return s.Base * float32(math.Pow(float64(gamma), float64(k)))
}

// Name implements Schedule.
func (s StepDecay) Name() string { return "step" }

// Cosine anneals from Base to Min over Period epochs and holds Min after.
type Cosine struct {
	Base   float32
	Min    float32
	Period int // 0 means 20
}

// LR implements Schedule.
func (c Cosine) LR(epoch int) float32 {
	period := c.Period
	if period == 0 {
		period = 20
	}
	if epoch < 1 {
		epoch = 1
	}
	if epoch > period {
		return c.Min
	}
	frac := float64(epoch-1) / float64(period-1)
	if period == 1 {
		frac = 1
	}
	return c.Min + (c.Base-c.Min)*float32((1+math.Cos(math.Pi*frac))/2)
}

// Name implements Schedule.
func (c Cosine) Name() string { return "cosine" }

// RateSetter is implemented by optimizers whose learning rate can be
// changed between epochs.
type RateSetter interface {
	SetLR(lr float32)
}

// RateReporter is implemented by optimizers whose current learning rate can
// be read back (the divergence guard uses it to halve the rate in place).
type RateReporter interface {
	CurrentLR() float32
}

// SetLR implements RateSetter.
func (a *Adam) SetLR(lr float32) { a.LR = lr }

// SetLR implements RateSetter.
func (s *SGD) SetLR(lr float32) { s.LR = lr }

// ApplySchedule sets the optimizer's rate for the epoch; it returns an
// error if the optimizer does not support rate changes.
func ApplySchedule(o Optimizer, sch Schedule, epoch int) error {
	rs, ok := o.(RateSetter)
	if !ok {
		return fmt.Errorf("opt: %s does not support LR schedules", o.Name())
	}
	rs.SetLR(sch.LR(epoch))
	return nil
}
