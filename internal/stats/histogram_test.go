package stats

import (
	"math"
	"testing"
)

func TestHistogramCounts(t *testing.T) {
	h := NewHistogram(1, 2, 4)
	for _, x := range []float64{0.5, 1, 1.5, 3, 100} {
		h.Observe(x)
	}
	if h.N() != 5 {
		t.Fatalf("N = %d", h.N())
	}
	if h.Sum() != 106 {
		t.Fatalf("Sum = %v", h.Sum())
	}
	cum := h.Cumulative()
	want := []int64{2, 3, 4, 5} // le=1:2 (0.5 and the boundary 1), le=2:3, le=4:4, +Inf:5
	for i := range want {
		if cum[i] != want[i] {
			t.Fatalf("Cumulative = %v, want %v", cum, want)
		}
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram(ExponentialBounds(1, 2, 10)...) // 1,2,4,...,512
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile must be 0")
	}
	for i := 0; i < 100; i++ {
		h.Observe(float64(i))
	}
	p50 := h.Quantile(0.5)
	if p50 < 32 || p50 > 64 {
		t.Fatalf("p50 = %v, want within (32, 64]", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 <= p50 || p99 > 128 {
		t.Fatalf("p99 = %v", p99)
	}
	// Quantiles are monotone in q.
	prev := -1.0
	for q := 0.0; q <= 1.0; q += 0.05 {
		v := h.Quantile(q)
		if v < prev {
			t.Fatalf("quantile not monotone at q=%v: %v < %v", q, v, prev)
		}
		prev = v
	}
	// Overflow clamps to the last bound.
	h2 := NewHistogram(1, 2)
	h2.Observe(50)
	if got := h2.Quantile(0.9); got != 2 {
		t.Fatalf("overflow quantile = %v, want last bound", got)
	}
}

// Quantile's edge ranks: q=0 must land at the lower edge of the first
// non-empty bucket (not bounds[0]), q=1 at the upper edge of the last
// non-empty one, and a histogram whose whole mass sits in the +Inf overflow
// bucket must clamp every quantile — including q=0 — to the last bound.
func TestHistogramQuantileEdges(t *testing.T) {
	// Empty leading buckets: all mass lives in (2, 4].
	h := NewHistogram(1, 2, 4)
	for i := 0; i < 10; i++ {
		h.Observe(3)
	}
	if got := h.Quantile(0); got != 2 {
		t.Errorf("q=0 = %v, want the populated bucket's lower edge 2", got)
	}
	if got := h.Quantile(1); got != 4 {
		t.Errorf("q=1 = %v, want the populated bucket's upper edge 4", got)
	}

	// All mass in the overflow bucket.
	inf := NewHistogram(1, 2)
	inf.Observe(100)
	inf.Observe(200)
	for _, q := range []float64{0, 0.5, 1} {
		if got := inf.Quantile(q); got != 2 {
			t.Errorf("overflow-only q=%v = %v, want last bound 2", q, got)
		}
	}

	// A single observation is bracketed by its bucket at every q.
	one := NewHistogram(1, 2, 4)
	one.Observe(1.5)
	for _, q := range []float64{0, 0.25, 0.5, 1} {
		if got := one.Quantile(q); got < 1 || got > 2 {
			t.Errorf("single-observation q=%v = %v, want within [1,2]", q, got)
		}
	}
	if one.Quantile(0) != 1 || one.Quantile(1) != 2 {
		t.Errorf("single-observation edges = %v..%v, want 1..2", one.Quantile(0), one.Quantile(1))
	}

	// Out-of-range q clamps rather than extrapolating.
	if one.Quantile(-3) != one.Quantile(0) || one.Quantile(7) != one.Quantile(1) {
		t.Error("q outside [0,1] must clamp")
	}
}

func TestHistogramMerge(t *testing.T) {
	a := NewHistogram(1, 2)
	b := NewHistogram(1, 2)
	a.Observe(0.5)
	b.Observe(1.5)
	b.Observe(10)
	a.Merge(b)
	if a.N() != 3 || a.Sum() != 12 {
		t.Fatalf("merged N=%d Sum=%v", a.N(), a.Sum())
	}
	cum := a.Cumulative()
	if cum[0] != 1 || cum[1] != 2 || cum[2] != 3 {
		t.Fatalf("merged cumulative %v", cum)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("merging mismatched bounds must panic")
		}
	}()
	a.Merge(NewHistogram(1, 3))
}

func TestHistogramBoundHelpers(t *testing.T) {
	lin := LinearBounds(2, 2, 4)
	for i, v := range []float64{2, 4, 6, 8} {
		if lin[i] != v {
			t.Fatalf("LinearBounds = %v", lin)
		}
	}
	exp := ExponentialBounds(0.5, 10, 3)
	for i, v := range []float64{0.5, 5, 50} {
		if math.Abs(exp[i]-v) > 1e-12 {
			t.Fatalf("ExponentialBounds = %v", exp)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("non-increasing bounds must panic")
		}
	}()
	NewHistogram(1, 1)
}
