package stats

import (
	"math"
	"testing"
)

func TestHistogramCounts(t *testing.T) {
	h := NewHistogram(1, 2, 4)
	for _, x := range []float64{0.5, 1, 1.5, 3, 100} {
		h.Observe(x)
	}
	if h.N() != 5 {
		t.Fatalf("N = %d", h.N())
	}
	if h.Sum() != 106 {
		t.Fatalf("Sum = %v", h.Sum())
	}
	cum := h.Cumulative()
	want := []int64{2, 3, 4, 5} // le=1:2 (0.5 and the boundary 1), le=2:3, le=4:4, +Inf:5
	for i := range want {
		if cum[i] != want[i] {
			t.Fatalf("Cumulative = %v, want %v", cum, want)
		}
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram(ExponentialBounds(1, 2, 10)...) // 1,2,4,...,512
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile must be 0")
	}
	for i := 0; i < 100; i++ {
		h.Observe(float64(i))
	}
	p50 := h.Quantile(0.5)
	if p50 < 32 || p50 > 64 {
		t.Fatalf("p50 = %v, want within (32, 64]", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 <= p50 || p99 > 128 {
		t.Fatalf("p99 = %v", p99)
	}
	// Quantiles are monotone in q.
	prev := -1.0
	for q := 0.0; q <= 1.0; q += 0.05 {
		v := h.Quantile(q)
		if v < prev {
			t.Fatalf("quantile not monotone at q=%v: %v < %v", q, v, prev)
		}
		prev = v
	}
	// Overflow clamps to the last bound.
	h2 := NewHistogram(1, 2)
	h2.Observe(50)
	if got := h2.Quantile(0.9); got != 2 {
		t.Fatalf("overflow quantile = %v, want last bound", got)
	}
}

func TestHistogramMerge(t *testing.T) {
	a := NewHistogram(1, 2)
	b := NewHistogram(1, 2)
	a.Observe(0.5)
	b.Observe(1.5)
	b.Observe(10)
	a.Merge(b)
	if a.N() != 3 || a.Sum() != 12 {
		t.Fatalf("merged N=%d Sum=%v", a.N(), a.Sum())
	}
	cum := a.Cumulative()
	if cum[0] != 1 || cum[1] != 2 || cum[2] != 3 {
		t.Fatalf("merged cumulative %v", cum)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("merging mismatched bounds must panic")
		}
	}()
	a.Merge(NewHistogram(1, 3))
}

func TestHistogramBoundHelpers(t *testing.T) {
	lin := LinearBounds(2, 2, 4)
	for i, v := range []float64{2, 4, 6, 8} {
		if lin[i] != v {
			t.Fatalf("LinearBounds = %v", lin)
		}
	}
	exp := ExponentialBounds(0.5, 10, 3)
	for i, v := range []float64{0.5, 5, 50} {
		if math.Abs(exp[i]-v) > 1e-12 {
			t.Fatalf("ExponentialBounds = %v", exp)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("non-increasing bounds must panic")
		}
	}()
	NewHistogram(1, 1)
}
