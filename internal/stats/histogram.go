package stats

import (
	"fmt"
	"math"
	"sort"
)

// Histogram is a fixed-bucket cumulative histogram in the Prometheus style:
// Bounds are the inclusive upper edges of each bucket, with an implicit
// final +Inf bucket; observations record into the first bucket whose bound
// is >= x. It is not safe for concurrent use; callers that share one wrap
// it in a mutex.
type Histogram struct {
	bounds []float64
	counts []int64 // len(bounds)+1; the final entry is the +Inf bucket
	sum    float64
	n      int64
}

// NewHistogram creates a histogram with the given upper bounds, which must
// be finite and strictly increasing.
func NewHistogram(bounds ...float64) *Histogram {
	if len(bounds) == 0 {
		panic("stats: histogram needs at least one bound")
	}
	for i, b := range bounds {
		if math.IsNaN(b) || math.IsInf(b, 0) {
			panic(fmt.Sprintf("stats: histogram bound %v", b))
		}
		if i > 0 && b <= bounds[i-1] {
			panic(fmt.Sprintf("stats: histogram bounds not increasing at %d: %v", i, bounds))
		}
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]int64, len(bounds)+1),
	}
}

// ExponentialBounds returns n upper bounds starting at start and multiplying
// by factor — the usual shape for latency buckets.
func ExponentialBounds(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic(fmt.Sprintf("stats: ExponentialBounds(%v, %v, %d)", start, factor, n))
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// LinearBounds returns n upper bounds start, start+step, ... — the usual
// shape for batch-size buckets.
func LinearBounds(start, step float64, n int) []float64 {
	if step <= 0 || n < 1 {
		panic(fmt.Sprintf("stats: LinearBounds(%v, %v, %d)", start, step, n))
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start + float64(i)*step
	}
	return out
}

// Observe records one observation.
func (h *Histogram) Observe(x float64) {
	i := sort.SearchFloat64s(h.bounds, x)
	h.counts[i]++
	h.sum += x
	h.n++
}

// N returns the observation count.
func (h *Histogram) N() int64 { return h.n }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return h.sum }

// Bounds returns the configured upper bounds (not a copy; do not mutate).
func (h *Histogram) Bounds() []float64 { return h.bounds }

// Cumulative returns the cumulative count at each bound, Prometheus
// `le`-style; the final +Inf count equals N.
func (h *Histogram) Cumulative() []int64 {
	out := make([]int64, len(h.counts))
	var c int64
	for i, v := range h.counts {
		c += v
		out[i] = c
	}
	return out
}

// Quantile estimates the q-th quantile (0..1) by linear interpolation
// within the bucket that crosses the target rank, the same estimate
// Prometheus's histogram_quantile computes. The overflow bucket is clamped
// to its lower edge. Returns 0 for an empty histogram.
func (h *Histogram) Quantile(q float64) float64 {
	if h.n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(h.n)
	var c int64
	for i, v := range h.counts {
		if v == 0 {
			// An empty bucket can never contain the target rank; skipping
			// it keeps q=0 out of empty leading buckets (it must land at
			// the lower edge of the first populated one).
			continue
		}
		c += v
		if float64(c) < rank {
			continue
		}
		if i == len(h.bounds) {
			// Overflow bucket: no upper edge; report the last bound.
			return h.bounds[len(h.bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = h.bounds[i-1]
		}
		frac := (rank - float64(c-v)) / float64(v)
		if frac < 0 {
			frac = 0
		}
		return lo + frac*(h.bounds[i]-lo)
	}
	return h.bounds[len(h.bounds)-1]
}

// Merge folds another histogram with identical bounds into h.
func (h *Histogram) Merge(o *Histogram) {
	if len(h.bounds) != len(o.bounds) {
		panic("stats: merging histograms with different bounds")
	}
	for i, b := range h.bounds {
		if b != o.bounds[i] {
			panic("stats: merging histograms with different bounds")
		}
	}
	for i, v := range o.counts {
		h.counts[i] += v
	}
	h.sum += o.sum
	h.n += o.n
}
