package stats

import "testing"

func TestWindowRolls(t *testing.T) {
	w := NewWindow(4)
	if got := w.Percentile(99); got != 0 {
		t.Fatalf("empty window percentile = %v, want 0", got)
	}
	for _, x := range []float64{10, 20, 30, 40} {
		w.Observe(x)
	}
	if w.N() != 4 {
		t.Fatalf("N = %d, want 4", w.N())
	}
	if got := w.Percentile(50); got < 20 || got > 30 {
		t.Fatalf("p50 of 10..40 = %v", got)
	}
	// Two more observations evict 10 and 20; the window is now {30,40,100,200}.
	w.Observe(100)
	w.Observe(200)
	if w.N() != 4 {
		t.Fatalf("N after roll = %d, want 4", w.N())
	}
	if got := w.Percentile(0); got != 30 {
		t.Fatalf("min after roll = %v, want 30 (oldest evicted)", got)
	}
	if got := w.Percentile(100); got != 200 {
		t.Fatalf("max after roll = %v, want 200", got)
	}
	w.Reset()
	if w.N() != 0 || w.Percentile(50) != 0 {
		t.Fatalf("Reset left samples behind: N=%d", w.N())
	}
}

func TestWindowCapFloor(t *testing.T) {
	w := NewWindow(0)
	w.Observe(1)
	w.Observe(2)
	if w.N() != 1 || w.Percentile(50) != 2 {
		t.Fatalf("cap-0 window should keep exactly the last sample, got N=%d p50=%v", w.N(), w.Percentile(50))
	}
}
