// Package stats provides the small statistical utilities the training
// engine and experiment harness share: percentiles (the Spike-Sum-Threshold
// of paper Eq. 5 is a percentile), running meters, and accuracy tracking.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation between order statistics. It panics on an empty slice and
// clamps p into [0,100]. xs is not modified.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		panic("stats: Percentile of empty slice")
	}
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Mean returns the arithmetic mean, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Meter accumulates a running sum/count/min/max.
type Meter struct {
	n        int
	sum      float64
	min, max float64
}

// Add records one observation.
func (m *Meter) Add(x float64) {
	if m.n == 0 || x < m.min {
		m.min = x
	}
	if m.n == 0 || x > m.max {
		m.max = x
	}
	m.n++
	m.sum += x
}

// N returns the observation count.
func (m *Meter) N() int { return m.n }

// Mean returns the running mean (0 when empty).
func (m *Meter) Mean() float64 {
	if m.n == 0 {
		return 0
	}
	return m.sum / float64(m.n)
}

// Sum returns the running sum.
func (m *Meter) Sum() float64 { return m.sum }

// Min returns the smallest observation (0 when empty).
func (m *Meter) Min() float64 { return m.min }

// Max returns the largest observation (0 when empty).
func (m *Meter) Max() float64 { return m.max }

// Accuracy tracks a correct/total ratio.
type Accuracy struct {
	Correct, Total int
}

// Add records a batch result.
func (a *Accuracy) Add(correct, total int) {
	a.Correct += correct
	a.Total += total
}

// Value returns the ratio in [0,1] (0 when empty).
func (a *Accuracy) Value() float64 {
	if a.Total == 0 {
		return 0
	}
	return float64(a.Correct) / float64(a.Total)
}

// String renders the accuracy as a percentage.
func (a *Accuracy) String() string {
	return fmt.Sprintf("%.2f%%", 100*a.Value())
}

// Confusion is a class-by-class confusion matrix: rows are true labels,
// columns are predictions.
type Confusion struct {
	K      int
	Counts []int
}

// NewConfusion creates a K-class confusion matrix.
func NewConfusion(k int) *Confusion {
	return &Confusion{K: k, Counts: make([]int, k*k)}
}

// Add records one (true, predicted) observation.
func (c *Confusion) Add(label, pred int) {
	if label < 0 || label >= c.K || pred < 0 || pred >= c.K {
		panic(fmt.Sprintf("stats: confusion index (%d,%d) out of range for K=%d", label, pred, c.K))
	}
	c.Counts[label*c.K+pred]++
}

// At returns the count of samples with the given true label and prediction.
func (c *Confusion) At(label, pred int) int { return c.Counts[label*c.K+pred] }

// Total returns the number of recorded observations.
func (c *Confusion) Total() int {
	t := 0
	for _, v := range c.Counts {
		t += v
	}
	return t
}

// Accuracy returns the trace ratio.
func (c *Confusion) Accuracy() float64 {
	if t := c.Total(); t > 0 {
		d := 0
		for k := 0; k < c.K; k++ {
			d += c.At(k, k)
		}
		return float64(d) / float64(t)
	}
	return 0
}

// PerClassRecall returns recall per true class (0 for unseen classes).
func (c *Confusion) PerClassRecall() []float64 {
	out := make([]float64, c.K)
	for k := 0; k < c.K; k++ {
		var row int
		for j := 0; j < c.K; j++ {
			row += c.At(k, j)
		}
		if row > 0 {
			out[k] = float64(c.At(k, k)) / float64(row)
		}
	}
	return out
}

// String renders a compact matrix for terminal inspection.
func (c *Confusion) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "confusion (%d classes, %d samples, acc %.2f%%)\n", c.K, c.Total(), 100*c.Accuracy())
	for k := 0; k < c.K; k++ {
		for j := 0; j < c.K; j++ {
			fmt.Fprintf(&b, "%5d", c.At(k, j))
		}
		b.WriteString("\n")
	}
	return b.String()
}
