package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestPercentileBasics(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {25, 2}, {50, 3}, {75, 4}, {100, 5}, {-5, 1}, {150, 5},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); math.Abs(got-c.want) > 1e-9 {
			t.Fatalf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestPercentileInterpolates(t *testing.T) {
	xs := []float64{0, 10}
	if got := Percentile(xs, 50); math.Abs(got-5) > 1e-9 {
		t.Fatalf("Percentile(50) = %v, want 5", got)
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("Percentile mutated input")
	}
}

func TestPercentileEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Percentile(nil, 50)
}

// Property: the fraction of elements strictly below the p-th percentile is
// at most p/100 (this is exactly the property Skipper's SST relies on: a
// percentile-p threshold skips at most ~p% of the timesteps).
func TestPercentileSkipFractionProperty(t *testing.T) {
	f := func(raw []uint16, pRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		p := float64(pRaw % 101)
		sst := Percentile(xs, p)
		below := 0
		for _, x := range xs {
			if x < sst {
				below++
			}
		}
		// Linear interpolation between order statistics can admit up to one
		// extra element below the threshold, hence the 1/n slack.
		return float64(below)/float64(len(xs)) <= p/100+1/float64(len(xs))+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil) != 0")
	}
	if got := Mean([]float64{1, 2, 3}); math.Abs(got-2) > 1e-12 {
		t.Fatalf("Mean = %v", got)
	}
}

func TestMeter(t *testing.T) {
	var m Meter
	if m.Mean() != 0 || m.N() != 0 {
		t.Fatal("empty meter should be zero")
	}
	m.Add(2)
	m.Add(4)
	m.Add(-1)
	if m.N() != 3 || m.Sum() != 5 {
		t.Fatalf("meter n=%d sum=%v", m.N(), m.Sum())
	}
	if m.Min() != -1 || m.Max() != 4 {
		t.Fatalf("meter min=%v max=%v", m.Min(), m.Max())
	}
	if math.Abs(m.Mean()-5.0/3) > 1e-12 {
		t.Fatalf("meter mean=%v", m.Mean())
	}
}

func TestAccuracy(t *testing.T) {
	var a Accuracy
	if a.Value() != 0 {
		t.Fatal("empty accuracy should be 0")
	}
	a.Add(3, 4)
	a.Add(1, 4)
	if math.Abs(a.Value()-0.5) > 1e-12 {
		t.Fatalf("accuracy = %v", a.Value())
	}
	if a.String() != "50.00%" {
		t.Fatalf("String = %q", a.String())
	}
}

func TestConfusionMatrix(t *testing.T) {
	c := NewConfusion(3)
	c.Add(0, 0)
	c.Add(0, 1)
	c.Add(1, 1)
	c.Add(2, 2)
	if c.Total() != 4 {
		t.Fatalf("Total = %d", c.Total())
	}
	if c.At(0, 1) != 1 || c.At(0, 0) != 1 {
		t.Fatal("counts wrong")
	}
	if math.Abs(c.Accuracy()-0.75) > 1e-12 {
		t.Fatalf("Accuracy = %v", c.Accuracy())
	}
	rec := c.PerClassRecall()
	if math.Abs(rec[0]-0.5) > 1e-12 || rec[1] != 1 || rec[2] != 1 {
		t.Fatalf("recall = %v", rec)
	}
	if s := c.String(); !strings.Contains(s, "3 classes") {
		t.Fatalf("String = %q", s)
	}
}

func TestConfusionEmptyAndPanics(t *testing.T) {
	c := NewConfusion(2)
	if c.Accuracy() != 0 {
		t.Fatal("empty accuracy should be 0")
	}
	if c.PerClassRecall()[0] != 0 {
		t.Fatal("unseen class recall should be 0")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.Add(5, 0)
}
