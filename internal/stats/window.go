package stats

// Window is a fixed-capacity rolling sample window: the last Cap observations
// in arrival order, with percentile queries over them. The router's SLO
// controller uses one per request class to track recent latency against a
// budget — a histogram would smear decisions over the whole run, while a
// bounded window reacts to the last few hundred requests and forgets old
// regimes (a reload spike, a dead replica) once they pass.
//
// The zero value is not useful; construct with NewWindow. Not safe for
// concurrent use — callers hold their own lock (matching Histogram).
type Window struct {
	buf  []float64
	next int
	full bool
}

// NewWindow returns a rolling window keeping the last cap observations.
// cap < 1 is treated as 1.
func NewWindow(cap int) *Window {
	if cap < 1 {
		cap = 1
	}
	return &Window{buf: make([]float64, 0, cap)}
}

// Observe appends one sample, evicting the oldest when full.
func (w *Window) Observe(x float64) {
	if len(w.buf) < cap(w.buf) {
		w.buf = append(w.buf, x)
		return
	}
	w.full = true
	w.buf[w.next] = x
	w.next = (w.next + 1) % cap(w.buf)
}

// N returns the number of samples currently held.
func (w *Window) N() int { return len(w.buf) }

// Percentile returns the p-th percentile (0–100) of the held samples, 0 when
// empty. Arrival order does not matter; Percentile copies before sorting.
func (w *Window) Percentile(p float64) float64 {
	if len(w.buf) == 0 {
		return 0
	}
	tmp := make([]float64, len(w.buf))
	copy(tmp, w.buf)
	return Percentile(tmp, p)
}

// Reset drops all held samples (used when a controller changes regime and
// stale samples would fight the new setpoint).
func (w *Window) Reset() {
	w.buf = w.buf[:0]
	w.next = 0
	w.full = false
}
