package router

import (
	"fmt"
	"sync"
	"time"

	"skipper/internal/stats"
)

// registry is the multi-model canary controller: it tracks which model
// generation each backend serves (fed by heartbeats) and runs at most one
// canary at a time — a fraction of sessions steered onto one reloaded
// backend, scored against the stable cohort, then promoted to the whole
// fleet or rolled back. Hot-reload was already safe per process
// (validate-before-swap in serve.Model); the registry is what makes it
// fleet-safe: a bad checkpoint reaches one replica and a sliver of sessions,
// never the whole fleet at once.
type registry struct {
	mu sync.Mutex

	run *canaryRun

	// Promotion criteria.
	minRequests  int     // canary cohort size before a promote is considered
	maxErrDelta  float64 // canary error rate may exceed baseline by at most this before promote
	rollbackErr  float64 // absolute canary 5xx rate that triggers immediate rollback
	latencySlack float64 // canary p99 may exceed baseline p99 by this factor

	promotions int64
	rollbacks  int64
	history    []CanaryEvent

	// Replication bookkeeping for the peered router tier. Every mutation of
	// the replicated state (start/finish/note) bumps version and stamps
	// mutator with this router's id; gossip adoption takes the higher
	// (version, lexically-lower mutator) state wholesale, so every peer
	// converges on the same run, history, and counters. Cohort stats stay
	// local — only the run's owner evaluates promotion from them.
	selfID  string // this router's peer id ("" for an unpeered router)
	version uint64
	mutator string // router whose mutation produced the current state
}

// historyCap bounds the canary audit log: /v1/fleet's event history is a
// ring buffer of the most recent historyCap transitions, never unbounded.
const historyCap = 64

// canaryRun is one in-flight canary.
type canaryRun struct {
	Path      string
	Fraction  float64
	BackendID string
	PrevPath  string // checkpoint to restore on rollback
	Owner     string // peer id of the router driving evaluation
	StartedAt time.Time

	base cohortStats // stable backends during the run
	can  cohortStats // the canary backend
}

// cohortStats scores one side of the canary split.
type cohortStats struct {
	requests int64
	errors   int64 // 5xx responses
	latency  *stats.Window
}

func newCohortStats() cohortStats {
	return cohortStats{latency: stats.NewWindow(sloWindow)}
}

func (c *cohortStats) observe(code int, latencyMS float64) {
	c.requests++
	if code >= 500 {
		c.errors++
	}
	c.latency.Observe(latencyMS)
}

func (c *cohortStats) errRate() float64 {
	if c.requests == 0 {
		return 0
	}
	return float64(c.errors) / float64(c.requests)
}

// CanaryEvent is one lifecycle transition, kept for /v1/fleet.
type CanaryEvent struct {
	Time   string `json:"time"`
	Action string `json:"action"` // started | promoted | rolled_back | promote_failed
	Path   string `json:"path"`
	Reason string `json:"reason,omitempty"`
}

// CanaryStatus is the /v1/fleet JSON view of the registry.
type CanaryStatus struct {
	Active      bool          `json:"active"`
	Path        string        `json:"path,omitempty"`
	Fraction    float64       `json:"fraction,omitempty"`
	Backend     string        `json:"backend,omitempty"`
	Requests    int64         `json:"canary_requests,omitempty"`
	ErrRate     float64       `json:"canary_error_rate,omitempty"`
	BaseErrRate float64       `json:"baseline_error_rate,omitempty"`
	Promotions  int64         `json:"promotions"`
	Rollbacks   int64         `json:"rollbacks"`
	History     []CanaryEvent `json:"history,omitempty"`
}

func newRegistry(minRequests int, selfID string) *registry {
	if minRequests <= 0 {
		minRequests = 50
	}
	return &registry{
		minRequests:  minRequests,
		maxErrDelta:  0.01,
		rollbackErr:  0.05,
		latencySlack: 1.5,
		selfID:       selfID,
		mutator:      selfID,
	}
}

// start begins a canary owned by this router. The caller (Router) has
// already taken the backend out of the main ring and reloaded it.
func (r *registry) start(path string, fraction float64, backendID, prevPath string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.run = &canaryRun{
		Path: path, Fraction: fraction, BackendID: backendID, PrevPath: prevPath,
		Owner:     r.selfID,
		StartedAt: time.Now(),
		base:      newCohortStats(),
		can:       newCohortStats(),
	}
	r.mutate()
	r.event("started", path, fmt.Sprintf("fraction %.3f on %s", fraction, backendID))
}

// mutate stamps a local change to the replicated state. Callers hold r.mu.
func (r *registry) mutate() {
	r.version++
	r.mutator = r.selfID
}

// active returns the running canary's (backendID, fraction), or ("", 0).
func (r *registry) active() (string, float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.run == nil {
		return "", 0
	}
	return r.run.BackendID, r.run.Fraction
}

// observe scores one routed response against the canary cohorts.
func (r *registry) observe(backendID string, code int, latencyMS float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.run == nil {
		return
	}
	if backendID == r.run.BackendID {
		r.run.can.observe(code, latencyMS)
	} else {
		r.run.base.observe(code, latencyMS)
	}
}

// evaluate returns the pending decision for the running canary: "promote",
// "rollback", or "". The reason string explains it for the event log.
//
// Rollback triggers on elevated 5xx with only a small sample — a canary that
// errors is pulled fast. Promote waits for minRequests canary responses and
// requires the canary's error rate within maxErrDelta of baseline and its
// p99 within latencySlack of baseline p99 — healthy deltas, not perfection,
// because two cohorts of a stochastic workload never match exactly.
func (r *registry) evaluate() (string, string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.run == nil {
		return "", ""
	}
	// Only the run's owner scores the cohorts: every router observes its own
	// slice of the traffic, and two routers evaluating independent samples
	// could reach opposite verdicts. Peers mirror the owner's decision
	// through gossip; if the owner dies mid-run, an operator promote or
	// rollback through any surviving router still works.
	if r.run.Owner != r.selfID {
		return "", ""
	}
	can, base := &r.run.can, &r.run.base
	if can.requests >= 8 {
		if e := can.errRate(); e > r.rollbackErr && e > base.errRate()+r.maxErrDelta {
			return "rollback", fmt.Sprintf("canary 5xx rate %.1f%% vs baseline %.1f%%", 100*e, 100*base.errRate())
		}
	}
	if can.requests < int64(r.minRequests) {
		return "", ""
	}
	if e, be := can.errRate(), base.errRate(); e > be+r.maxErrDelta {
		return "rollback", fmt.Sprintf("canary error rate %.2f%% exceeds baseline %.2f%% past delta", 100*e, 100*be)
	}
	basep99 := base.latency.Percentile(99)
	canp99 := can.latency.Percentile(99)
	if base.requests >= 8 && basep99 > 0 && canp99 > r.latencySlack*basep99 {
		return "rollback", fmt.Sprintf("canary p99 %.1fms vs baseline %.1fms exceeds %.1fx slack", canp99, basep99, r.latencySlack)
	}
	return "promote", fmt.Sprintf("%d canary requests, err %.2f%% vs %.2f%%, p99 %.1fms vs %.1fms",
		can.requests, 100*can.errRate(), 100*base.errRate(), canp99, basep99)
}

// snapshotRun returns a copy of the running canary (for the Router's
// promote/rollback executors), or nil.
func (r *registry) snapshotRun() *canaryRun {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.run == nil {
		return nil
	}
	cp := *r.run
	return &cp
}

// finish closes the run with a terminal action ("promoted"/"rolled_back").
func (r *registry) finish(action, reason string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.run == nil {
		return
	}
	switch action {
	case "promoted":
		r.promotions++
	case "rolled_back":
		r.rollbacks++
	}
	r.mutate()
	r.event(action, r.run.Path, reason)
	r.run = nil
}

// note records a non-terminal event (e.g. a failed promote reload that will
// be retried).
func (r *registry) note(action, path, reason string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.mutate()
	r.event(action, path, reason)
}

func (r *registry) event(action, path, reason string) {
	r.history = append(r.history, CanaryEvent{
		Time: time.Now().UTC().Format(time.RFC3339Nano), Action: action, Path: path, Reason: reason,
	})
	if len(r.history) > historyCap {
		r.history = r.history[len(r.history)-historyCap:]
	}
}

// registryState is the replicated slice of the registry: everything except
// the local cohort stats. It rides in each gossip sync.
type registryState struct {
	Version    uint64          `json:"version"`
	Mutator    string          `json:"mutator,omitempty"`
	Promotions int64           `json:"promotions"`
	Rollbacks  int64           `json:"rollbacks"`
	History    []CanaryEvent   `json:"history,omitempty"`
	Run        *canaryRunState `json:"run,omitempty"`
}

// canaryRunState is the wire form of an active run.
type canaryRunState struct {
	Path      string  `json:"path"`
	Fraction  float64 `json:"fraction"`
	BackendID string  `json:"backend_id"`
	PrevPath  string  `json:"prev_path,omitempty"`
	Owner     string  `json:"owner,omitempty"`
	StartedAt string  `json:"started_at"`
}

// state snapshots the replicated registry slice for gossip.
func (r *registry) state() registryState {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := registryState{
		Version:    r.version,
		Mutator:    r.mutator,
		Promotions: r.promotions,
		Rollbacks:  r.rollbacks,
		History:    append([]CanaryEvent(nil), r.history...),
	}
	if r.run != nil {
		st.Run = &canaryRunState{
			Path:      r.run.Path,
			Fraction:  r.run.Fraction,
			BackendID: r.run.BackendID,
			PrevPath:  r.run.PrevPath,
			Owner:     r.run.Owner,
			StartedAt: r.run.StartedAt.UTC().Format(time.RFC3339Nano),
		}
	}
	return st
}

// adopt merges a peer's registry state. The higher version wins; equal
// versions tie-break on the lexically lower mutator id, so two routers that
// raced a mutation converge on one state instead of diverging forever. A
// newly (re)started router is at version 0 and adopts a peer's whole
// history — promote/rollback events survive any single router's death.
// Returns true when the local state was replaced.
func (r *registry) adopt(st registryState) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if st.Version < r.version {
		return false
	}
	if st.Version == r.version && st.Mutator >= r.mutator {
		return false
	}
	r.version = st.Version
	r.mutator = st.Mutator
	r.promotions = st.Promotions
	r.rollbacks = st.Rollbacks
	r.history = append([]CanaryEvent(nil), st.History...)
	if st.Run == nil {
		r.run = nil
		return true
	}
	started, _ := time.Parse(time.RFC3339Nano, st.Run.StartedAt)
	r.run = &canaryRun{
		Path:      st.Run.Path,
		Fraction:  st.Run.Fraction,
		BackendID: st.Run.BackendID,
		PrevPath:  st.Run.PrevPath,
		Owner:     st.Run.Owner,
		StartedAt: started,
		base:      newCohortStats(),
		can:       newCohortStats(),
	}
	return true
}

func (r *registry) status() CanaryStatus {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := CanaryStatus{Promotions: r.promotions, Rollbacks: r.rollbacks, History: append([]CanaryEvent(nil), r.history...)}
	if r.run != nil {
		st.Active = true
		st.Path = r.run.Path
		st.Fraction = r.run.Fraction
		st.Backend = r.run.BackendID
		st.Requests = r.run.can.requests
		st.ErrRate = r.run.can.errRate()
		st.BaseErrRate = r.run.base.errRate()
	}
	return st
}

func (r *registry) counts() (promotions, rollbacks int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.promotions, r.rollbacks
}
