package router

import (
	"encoding/json"
	"fmt"
	"skipper/internal/frame"
	"time"
)

// peerState is the full replicated state one router shares with a peer on
// every sync: backend membership (specs, so a peer learns replicas it was not
// configured with), this router's suspicion votes, announced drains, the
// canary registry, and the admission config. Syncs are bidirectional — the
// initiator sends its state and the responder acks with its own — so a single
// round trip converges both ends, and a freshly restarted router repopulates
// everything from the first peer it reaches.
type peerState struct {
	PeerID    string         `json:"peer_id"`
	Backends  []BackendSpec  `json:"backends,omitempty"`
	Suspects  []string       `json:"suspects,omitempty"`
	Draining  []string       `json:"draining,omitempty"`
	Registry  registryState  `json:"registry"`
	Admission admissionState `json:"admission"`
}

// localPeerState snapshots this router's replicated state.
func (rt *Router) localPeerState() peerState {
	st := peerState{
		PeerID:    rt.cfg.PeerID,
		Suspects:  rt.susp.selfVotes(),
		Registry:  rt.registry.state(),
		Admission: rt.admission.state(),
	}
	rt.mu.RLock()
	for _, id := range rt.order {
		b := rt.backends[id]
		st.Backends = append(st.Backends, b.spec)
		if b.drainAnnounced.Load() {
			st.Draining = append(st.Draining, b.id)
		}
	}
	rt.mu.RUnlock()
	return st
}

// mergePeerState folds one peer's state into this router:
//
//   - its suspicion votes replace its previous ballot (quorum recount below);
//   - the registry and admission config adopt whichever side's version wins,
//     so canary runs and promote/rollback history replicate everywhere;
//   - unknown backends join the local table (they enter the ring once a
//     local probe confirms them — membership gossips, health stays local);
//   - announced drains latch here too, covering a replica that could not
//     reach every router itself;
//   - backends the refreshed vote count now confirms dead are killed.
func (rt *Router) mergePeerState(st peerState) {
	if st.PeerID == "" || st.PeerID == rt.cfg.PeerID {
		return
	}
	rt.susp.record(st.PeerID, st.Suspects)
	rt.registry.adopt(st.Registry)
	rt.admission.adopt(st.Admission)

	now := time.Now()
	rt.mu.Lock()
	defer rt.mu.Unlock()
	for _, spec := range st.Backends {
		if spec.validate() != nil {
			continue
		}
		if _, known := rt.backends[spec.URL]; known {
			continue
		}
		rt.backends[spec.URL] = newBackend(spec)
		rt.order = append(rt.order, spec.URL)
	}
	for _, id := range st.Draining {
		b := rt.backends[id]
		if b == nil || b.State() == StateDead {
			continue
		}
		b.drainAnnounced.Store(true)
		rt.setDrainingLocked(b)
	}
	for _, b := range rt.backends {
		if b.State() != StateDead && rt.susp.confirmed(b.id) {
			rt.killBackendLocked(b, now)
		}
	}
	// An adopted canary run must pull its backend out of the main ring here
	// too; an adopted run end is undone lazily (the next heartbeat pass
	// re-rings the healthy ex-canary).
	if canaryID, _ := rt.registry.active(); canaryID != "" && rt.ring.Has(canaryID) {
		rt.ring.Remove(canaryID)
		rt.metrics.observeRemap()
	}
}

// gossipLoop drives one peer link: a sync every SyncInterval, plus immediate
// syncs when kickSync signals urgent news (a new suspicion vote, an announced
// drain, a config mutation).
func (rt *Router) gossipLoop(link *peerLink) {
	defer rt.wg.Done()
	tick := time.NewTicker(rt.cfg.SyncInterval)
	defer tick.Stop()
	for {
		select {
		case <-rt.stop:
			link.drop()
			return
		case <-tick.C:
		case <-link.kick:
		}
		if err := rt.syncPeer(link); err != nil {
			link.fail(err)
			rt.metrics.observePeerSync(false)
		} else {
			rt.metrics.observePeerSync(true)
		}
	}
}

// syncPeer runs one sync round trip with a peer: send local state, read the
// peer's state back, merge it.
func (rt *Router) syncPeer(link *peerLink) error {
	conn, err := link.get(rt.syncTimeout())
	if err != nil {
		return err
	}
	payload, err := json.Marshal(rt.localPeerState())
	if err != nil {
		return err
	}
	conn.SetDeadline(time.Now().Add(rt.syncTimeout()))
	if err := frame.Write(conn, peerSyncFrame, payload); err != nil {
		link.drop()
		return err
	}
	typ, resp, err := frame.Read(conn)
	if err != nil {
		link.drop()
		return err
	}
	if typ != peerSyncAckFrame {
		link.drop()
		return fmt.Errorf("router: peer sync ack frame type %d, want %d", typ, peerSyncAckFrame)
	}
	conn.SetDeadline(time.Time{})
	var st peerState
	if err := json.Unmarshal(resp, &st); err != nil {
		link.drop()
		return err
	}
	rt.mergePeerState(st)
	link.ok(st.PeerID, time.Now())
	return nil
}

// kickSync nudges every peer link to sync now instead of waiting out the
// interval. Non-blocking; a link already kicked absorbs the extra nudge.
func (rt *Router) kickSync() {
	for _, l := range rt.peers {
		select {
		case l.kick <- struct{}{}:
		default:
		}
	}
}

// syncTimeout bounds one peer dial or sync exchange. Derived from the sync
// interval (not RequestTimeout) so a hung peer stalls its link for a couple
// of rounds, not 30s.
func (rt *Router) syncTimeout() time.Duration {
	t := 2 * rt.cfg.SyncInterval
	if t < time.Second {
		t = time.Second
	}
	return t
}
