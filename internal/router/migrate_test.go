package router

import (
	"encoding/json"
	"math"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"skipper/internal/layers"
	"skipper/internal/models"
	"skipper/internal/serve"
	"skipper/internal/stream"
)

func streamTestBuild() (*layers.Network, error) {
	return models.Build("customnet", models.Options{
		InShape: []int{2, 8, 8},
		Classes: 4,
		Width:   0.25,
	})
}

// fleetReplica is one serve replica with both its HTTP and framed listeners
// up, as the router sees real backends.
type fleetReplica struct {
	srv  *serve.Server
	http *httptest.Server
	ln   net.Listener
}

func startFleetReplica(t *testing.T) *fleetReplica {
	t.Helper()
	s, err := serve.NewServer(serve.Config{Build: streamTestBuild, T: 4}, "")
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	hs := httptest.NewServer(s.Handler())
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("fleet listen: %v", err)
	}
	go s.ServeFleet(ln)
	t.Cleanup(func() {
		ln.Close()
		hs.Close()
	})
	return &fleetReplica{srv: s, http: hs, ln: ln}
}

func (r *fleetReplica) spec() BackendSpec {
	return BackendSpec{URL: r.http.URL, FleetAddr: r.ln.Addr().String()}
}

var migGen = stream.GenOptions{
	Seed:            11,
	WindowSteps:     5,
	EventsPerWindow: 8,
	QuietFrac:       0.4,
}

func clientFeed(t *testing.T, c *stream.Client, id string, from, to int) [][]float32 {
	t.Helper()
	var out [][]float32
	for w := from; w < to; w++ {
		rep, err := c.Window(stream.WindowRequest{
			Session: id,
			Seq:     w,
			Steps:   migGen.WindowSteps,
			Events:  stream.GenWindow(migGen, 0, w, 2*8*8),
		})
		if err != nil {
			t.Fatalf("window %d: %v", w, err)
		}
		out = append(out, rep.Logits)
	}
	return out
}

func placeSession(t *testing.T, routerURL, id string) stream.Placement {
	t.Helper()
	resp, err := http.Get(routerURL + "/v1/stream/place?session=" + id)
	if err != nil {
		t.Fatalf("place: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("place: status %d", resp.StatusCode)
	}
	var pl stream.Placement
	if err := json.NewDecoder(resp.Body).Decode(&pl); err != nil {
		t.Fatalf("place decode: %v", err)
	}
	return pl
}

// TestRouterMigratesSessionsOnDrain is the migrate-on-drain acceptance test:
// a replica announces its shutdown, the router pulls its live streaming
// session to the surviving replica over the multiplexed fleet channel, the
// placement endpoint redirects the client there, and the resumed stream's
// predictions are bitwise identical to an uninterrupted run.
func TestRouterMigratesSessionsOnDrain(t *testing.T) {
	const cut, total = 4, 9

	a := startFleetReplica(t)
	b := startFleetReplica(t)

	peerLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("peer listen: %v", err)
	}
	rt, err := New(Config{
		Backends:          []BackendSpec{a.spec(), b.spec()},
		HeartbeatInterval: 40 * time.Millisecond,
		RequestTimeout:    5 * time.Second,
		PeerListener:      peerLn,
		JitterSeed:        1,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(rt.Close)
	rts := httptest.NewServer(rt.Handler())
	t.Cleanup(rts.Close)

	// Reference: the uninterrupted stream on a replica outside the fleet.
	ref := startFleetReplica(t)
	if _, serr := ref.srv.Streams().Open(stream.OpenRequest{Session: "s"}); serr != nil {
		t.Fatalf("open ref: %v", serr)
	}
	var want [][]float32
	for w := 0; w < total; w++ {
		rep, serr := ref.srv.Streams().Window(stream.WindowRequest{
			Session: "s", Seq: w, Steps: migGen.WindowSteps,
			Events: stream.GenWindow(migGen, 0, w, 2*8*8),
		})
		if serr != nil {
			t.Fatalf("ref window %d: %v", w, serr)
		}
		want = append(want, rep.Logits)
	}

	// Wait for both backends to join the ring, then open through placement.
	deadline := time.Now().Add(5 * time.Second)
	for {
		rt.mu.RLock()
		n := rt.ring.Len()
		rt.mu.RUnlock()
		if n == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("backends never became alive")
		}
		time.Sleep(10 * time.Millisecond)
	}

	pl := placeSession(t, rts.URL, "s")
	c, err := stream.Dial(pl.FleetAddr, 5*time.Second)
	if err != nil {
		t.Fatalf("dial %s: %v", pl.FleetAddr, err)
	}
	defer c.Close()
	if _, err := c.Open(stream.OpenRequest{Session: "s"}); err != nil {
		t.Fatalf("open: %v", err)
	}
	got := clientFeed(t, c, "s", 0, cut)

	// The placed replica announces its drain; the router must pull the
	// session to the other replica.
	if acked := serve.AnnounceDrain([]string{peerLn.Addr().String()}, pl.URL, 2*time.Second); acked != 1 {
		t.Fatalf("drain announce acked by %d routers, want 1", acked)
	}
	for rt.Metrics().SessionsMigrated() == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("session never migrated (failures=%d)", func() int64 {
				rt.metrics.mu.Lock()
				defer rt.metrics.mu.Unlock()
				return rt.metrics.migrationFailures
			}())
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The drained replica must refuse the session rather than answer stale.
	if _, err := c.Window(stream.WindowRequest{Session: "s", Seq: cut, Steps: migGen.WindowSteps}); err == nil {
		t.Fatalf("window on the drained replica succeeded after migration")
	}

	pl2 := placeSession(t, rts.URL, "s")
	if pl2.FleetAddr == pl.FleetAddr {
		t.Fatalf("placement still points at the draining replica %s", pl.FleetAddr)
	}
	c2, err := stream.Dial(pl2.FleetAddr, 5*time.Second)
	if err != nil {
		t.Fatalf("dial %s: %v", pl2.FleetAddr, err)
	}
	defer c2.Close()
	open, err := c2.Open(stream.OpenRequest{Session: "s", RequireResume: true})
	if err != nil {
		t.Fatalf("resume at %s: %v", pl2.FleetAddr, err)
	}
	if !open.Resumed || open.Window != cut {
		t.Fatalf("resume landed at window %d (resumed=%v), want %d", open.Window, open.Resumed, cut)
	}
	got = append(got, clientFeed(t, c2, "s", cut, total)...)

	if len(got) != len(want) {
		t.Fatalf("got %d windows, want %d", len(got), len(want))
	}
	for w := range want {
		for i := range want[w] {
			if math.Float32bits(got[w][i]) != math.Float32bits(want[w][i]) {
				t.Fatalf("window %d logit %d differs across migration: %v vs %v", w, i, got[w][i], want[w][i])
			}
		}
	}
	if n := rt.Metrics().SessionsMigrated(); n != 1 {
		t.Fatalf("migrated %d sessions, want 1", n)
	}
}
