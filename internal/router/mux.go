package router

import (
	"fmt"
	"net"
	"sync"
	"time"

	"skipper/internal/frame"
	"skipper/internal/serve"
)

// muxConn is one long-lived multiplexed fleet connection: every in-flight
// exchange to the backend rides it under a FleetMux correlation envelope. A
// reader goroutine matches replies to waiters by correlation id; any framing
// error fails every pending exchange and drops the connection (the protocol
// has no re-synchronization), and the next exchange redials.
type muxConn struct {
	addr    string
	timeout time.Duration

	mu      sync.Mutex // guards conn identity, pending, next; also serialises writes
	conn    net.Conn
	pending map[uint64]chan muxReply
	next    uint64
}

type muxReply struct {
	typ     byte
	payload []byte
	err     error
}

func newMuxConn(addr string, timeout time.Duration) *muxConn {
	return &muxConn{addr: addr, timeout: timeout}
}

// exchange runs one correlated request/response round-trip, dialing on first
// use or after a failure. The per-exchange deadline is enforced by the
// waiter, not a connection deadline — other exchanges share the socket.
func (m *muxConn) exchange(typ byte, payload []byte) (byte, []byte, error) {
	m.mu.Lock()
	if m.conn == nil {
		conn, err := net.DialTimeout("tcp", m.addr, m.timeout)
		if err != nil {
			m.mu.Unlock()
			return 0, nil, err
		}
		m.conn = conn
		m.pending = map[uint64]chan muxReply{}
		go m.readLoop(conn)
	}
	conn := m.conn
	m.next++
	corr := m.next
	ch := make(chan muxReply, 1)
	m.pending[corr] = ch
	// Write under mu: frames from concurrent exchanges must not interleave.
	err := frame.Write(conn, serve.FleetMux, frame.EncodeCorr(corr, typ, payload))
	m.mu.Unlock()
	if err != nil {
		m.fail(conn, err)
		return 0, nil, err
	}

	timer := time.NewTimer(m.timeout)
	defer timer.Stop()
	select {
	case rep := <-ch:
		return rep.typ, rep.payload, rep.err
	case <-timer.C:
		// Closing unblocks the read loop, which fails the other waiters —
		// a stalled connection cannot be trusted for them either.
		m.fail(conn, nil)
		return 0, nil, fmt.Errorf("router: fleet mux exchange to %s timed out after %v", m.addr, m.timeout)
	}
}

// readLoop delivers replies until the connection dies.
func (m *muxConn) readLoop(conn net.Conn) {
	for {
		typ, payload, err := frame.Read(conn)
		if err != nil {
			m.fail(conn, err)
			return
		}
		if typ != serve.FleetMux {
			m.fail(conn, fmt.Errorf("router: unexpected bare frame type %d on mux connection", typ))
			return
		}
		corr, ityp, inner, err := frame.DecodeCorr(payload)
		if err != nil {
			m.fail(conn, err)
			return
		}
		body := append([]byte(nil), inner...) // inner aliases the read buffer
		m.mu.Lock()
		ch, ok := m.pending[corr]
		delete(m.pending, corr)
		m.mu.Unlock()
		if ok {
			ch <- muxReply{typ: ityp, payload: body}
		}
	}
}

// fail tears down conn (if it is still the live connection) and errors every
// pending exchange.
func (m *muxConn) fail(conn net.Conn, err error) {
	if err == nil {
		err = fmt.Errorf("router: fleet mux connection to %s closed", m.addr)
	}
	conn.Close()
	m.mu.Lock()
	if m.conn != conn {
		m.mu.Unlock()
		return
	}
	pending := m.pending
	m.conn, m.pending = nil, nil
	m.mu.Unlock()
	for _, ch := range pending {
		ch <- muxReply{err: err}
	}
}

func (m *muxConn) close() {
	m.mu.Lock()
	conn := m.conn
	m.mu.Unlock()
	if conn != nil {
		m.fail(conn, fmt.Errorf("router: fleet mux connection to %s shut down", m.addr))
	}
}

// mux returns the backend's multiplexed connection handle, creating it on
// first use.
func (tr *transport) mux(addr string) *muxConn {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	mc, ok := tr.muxes[addr]
	if !ok {
		mc = newMuxConn(addr, tr.timeout)
		tr.muxes[addr] = mc
	}
	return mc
}

// mexchange runs one multiplexed exchange against a fleet address.
func (tr *transport) mexchange(addr string, typ byte, payload []byte) (byte, []byte, error) {
	return tr.mux(addr).exchange(typ, payload)
}
