package router

import (
	"fmt"
	"net"
	"net/http"
	"sync/atomic"
	"testing"
	"time"

	"skipper/internal/serve"
)

// peerListener opens a loopback peer-channel listener for one test router.
func peerListener(t *testing.T) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("peer listener: %v", err)
	}
	return ln
}

// deadAddr returns a loopback address that refuses connections — the phantom
// third router that pads the quorum denominator without ever voting.
func deadAddr(t *testing.T) string {
	t.Helper()
	ln := peerListener(t)
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

func waitFor(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func ringHas(rt *Router, id string) bool {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	return rt.ring.Has(id)
}

// TestHeartbeatStaggerDecorrelates pins the probe scheduler's spreading: per
// -backend jittered intervals plus the startup stagger keep the probes of
// different replicas from arriving in lockstep rounds. The pre-jitter
// scheduler probed every backend in the same pass, so all probe timestamps
// aligned within a millisecond; now most of them must not.
func TestHeartbeatStaggerDecorrelates(t *testing.T) {
	replicas := []*fakeReplica{
		newFakeReplica(t, "/ckpt/a"),
		newFakeReplica(t, "/ckpt/b"),
		newFakeReplica(t, "/ckpt/c"),
	}
	specs := make([]BackendSpec, len(replicas))
	for i, f := range replicas {
		specs[i] = BackendSpec{URL: f.url()}
	}
	const hb = 60 * time.Millisecond
	rt, err := New(Config{Backends: specs, HeartbeatInterval: hb, DeadAfter: 3})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer rt.Close()

	time.Sleep(10 * hb)

	// Drop each replica's first probe — the synchronous warm-up pass probes
	// everything at once by design.
	times := make([][]time.Time, len(replicas))
	for i, f := range replicas {
		ts := f.probes()
		if len(ts) < 6 {
			t.Fatalf("replica %d saw only %d probes over 10 intervals", i, len(ts))
		}
		times[i] = ts[1:]
	}

	// Count probe pairs across replicas that landed inside the same tight
	// window. Lockstep scheduling aligns essentially all of them.
	aligned, total := 0, 0
	window := hb / 8
	for a := 0; a < len(times); a++ {
		for b := a + 1; b < len(times); b++ {
			for _, ta := range times[a] {
				nearest := time.Duration(1 << 62)
				for _, tb := range times[b] {
					d := ta.Sub(tb)
					if d < 0 {
						d = -d
					}
					if d < nearest {
						nearest = d
					}
				}
				total++
				if nearest < window {
					aligned++
				}
			}
		}
	}
	if total == 0 {
		t.Fatal("no probe pairs compared")
	}
	if aligned*2 >= total {
		t.Fatalf("%d/%d probe pairs aligned within %v; heartbeats are still in lockstep", aligned, total, window)
	}
}

// TestFlapDampingBoundsChurn pins the recovery backoff: a replica that flaps
// (dies and recovers repeatedly) is held out of the ring on an exponentially
// growing hold-down, so ring churn stays bounded instead of remapping arcs on
// every flap — and the stable replica never loses its arcs.
func TestFlapDampingBoundsChurn(t *testing.T) {
	stable := newFakeReplica(t, "/ckpt/a")
	flapper := newFakeReplica(t, "/ckpt/b")
	const hb = 10 * time.Millisecond
	rt, err := New(Config{
		Backends:          []BackendSpec{{URL: stable.url()}, {URL: flapper.url()}},
		HeartbeatInterval: hb,
		DeadAfter:         1,
		ReadmitBackoffMax: 400 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer rt.Close()
	waitFor(t, 2*time.Second, "both replicas ringed", func() bool {
		return ringHas(rt, stable.url()) && ringHas(rt, flapper.url())
	})

	base := rt.Metrics().Remaps()
	// Flap hard: the replica toggles health every 1.5 heartbeats for 90
	// intervals. Undamped, nearly every down-phase is a death and every
	// up-phase a re-admission — ~60 remaps. The exponential hold-down
	// (10, 20, 40, ... 400ms) admits only a handful of cycles.
	for i := 0; i < 60; i++ {
		flapper.down.Store(i%2 == 0)
		time.Sleep(hb * 3 / 2)
	}
	flapper.down.Store(false)
	churn := rt.Metrics().Remaps() - base
	if churn > 24 {
		t.Fatalf("ring remapped %d times across the flap storm; damping should bound churn well under the ~60 undamped remaps", churn)
	}
	if churn == 0 {
		t.Fatal("no remaps at all — the flapping replica was never detected")
	}
	if !ringHas(rt, stable.url()) {
		t.Fatal("the stable replica lost its ring arcs during the neighbor's flap storm")
	}

	// Once the replica is genuinely healthy again it re-admits after the
	// final hold-down elapses.
	waitFor(t, 2*time.Second, "flapping replica re-admitted", func() bool {
		return ringHas(rt, flapper.url())
	})
}

// TestCanaryHistoryBounded pins the audit-log ring buffer: the /v1/fleet
// event history never grows past historyCap and keeps the newest events.
func TestCanaryHistoryBounded(t *testing.T) {
	r := newRegistry(1, "self")
	for i := 0; i < 3*historyCap; i++ {
		r.note("promote_failed", fmt.Sprintf("/ckpt/v%d", i), "test")
	}
	st := r.status()
	if len(st.History) != historyCap {
		t.Fatalf("history length %d, want exactly %d", len(st.History), historyCap)
	}
	last := st.History[len(st.History)-1]
	if want := fmt.Sprintf("/ckpt/v%d", 3*historyCap-1); last.Path != want {
		t.Fatalf("newest event path %q, want %q (ring buffer must keep the tail)", last.Path, want)
	}
	if first := st.History[0].Path; first != fmt.Sprintf("/ckpt/v%d", 2*historyCap) {
		t.Fatalf("oldest retained event is %q; the buffer did not slide", first)
	}
}

// TestRegistryAdoptConverges pins the replication tie-break: higher version
// wins, equal versions converge on the lexically lower mutator, and a fresh
// (restarted) registry adopts a peer's history wholesale.
func TestRegistryAdoptConverges(t *testing.T) {
	ra := newRegistry(1, "a")
	rb := newRegistry(1, "b")
	ra.note("started", "/ckpt/x", "on a")
	rb.note("started", "/ckpt/y", "on b")

	// Same version, different mutators: b adopts a's state, a refuses b's.
	if !rb.adopt(ra.state()) {
		t.Fatal("b should adopt a's state (lexically lower mutator wins the version tie)")
	}
	if ra.adopt(rb.state()) {
		t.Fatal("a must not adopt b's state after b converged to a (identical version+mutator)")
	}
	if got := rb.status().History[0].Path; got != "/ckpt/x" {
		t.Fatalf("b's history head is %q after adoption, want a's /ckpt/x", got)
	}

	// A later local mutation on b outranks a's state everywhere.
	rb.note("promoted", "/ckpt/x", "op")
	if !ra.adopt(rb.state()) {
		t.Fatal("a should adopt b's higher-version state")
	}

	// A restarted router (version 0) pulls the full history from any peer.
	fresh := newRegistry(1, "c")
	if !fresh.adopt(ra.state()) {
		t.Fatal("fresh registry should adopt any non-zero peer state")
	}
	if n := len(fresh.status().History); n != 2 {
		t.Fatalf("fresh registry has %d events after adoption, want 2", n)
	}
}

// TestSuspicionQuorum pins the vote book: majority arithmetic, stale-peer
// vote expiry, and single-router collapse.
func TestSuspicionQuorum(t *testing.T) {
	clock := time.Unix(1000, 0)
	now := func() time.Time { return clock }
	s := newSuspicion(3, 50*time.Millisecond, now)
	if s.majority() != 2 {
		t.Fatalf("majority of 3 = %d, want 2", s.majority())
	}
	if !s.suspect("x") || s.suspect("x") {
		t.Fatal("suspect should report a new vote exactly once")
	}
	if s.confirmed("x") {
		t.Fatal("one vote of three must not confirm")
	}
	s.record("peer1", []string{"x"})
	if !s.confirmed("x") {
		t.Fatal("two of three votes should confirm")
	}
	// The peer goes quiet: its vote expires, the denominator does not shrink.
	clock = clock.Add(60 * time.Millisecond)
	if s.confirmed("x") {
		t.Fatal("a stale peer's vote must stop counting")
	}
	s.record("peer1", []string{"x"})
	if !s.confirmed("x") {
		t.Fatal("a re-synced peer's vote counts again")
	}
	if !s.clear("x") || s.clear("x") {
		t.Fatal("clear should report a withdrawn vote exactly once")
	}
	if s.confirmed("x") {
		t.Fatal("one peer vote of three must not confirm after the local clear")
	}

	single := newSuspicion(1, 0, now)
	single.suspect("y")
	if !single.confirmed("y") {
		t.Fatal("single-router cluster: local suspicion must be immediate death (majority 1)")
	}
}

// TestPeerSyncReplicatesState is the tentpole's convergence test: two peered
// routers, a canary started and promoted through router A, and every piece of
// replicated state — canary events, counters, admission config — shows up on
// router B; then a freshly restarted router adopts the full history from the
// surviving peer, so promote/rollback events outlive any single router.
func TestPeerSyncReplicatesState(t *testing.T) {
	replicas := []*fakeReplica{
		newFakeReplica(t, "/ckpt/base"),
		newFakeReplica(t, "/ckpt/base"),
		newFakeReplica(t, "/ckpt/base"),
	}
	specs := make([]BackendSpec, len(replicas))
	for i, f := range replicas {
		specs[i] = BackendSpec{URL: f.url()}
	}
	lnA, lnB := peerListener(t), peerListener(t)
	addrA, addrB := lnA.Addr().String(), lnB.Addr().String()
	const hb = 25 * time.Millisecond
	mk := func(ln net.Listener, peers ...string) *Router {
		rt, err := New(Config{
			Backends:          specs,
			HeartbeatInterval: hb,
			DeadAfter:         2,
			SyncInterval:      10 * time.Millisecond,
			PeerListener:      ln,
			Peers:             peers,
			CanaryMinRequests: 1 << 30, // operator-driven lifecycle only
		})
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		return rt
	}
	a := mk(lnA, addrB)
	b := mk(lnB, addrA)
	defer b.Close()

	if err := a.StartCanary("/ckpt/v2", 0.25); err != nil {
		t.Fatalf("StartCanary: %v", err)
	}
	canaryID, _ := a.registry.active()

	// The run replicates: B adopts it and pulls the canary backend out of its
	// own ring, so both routers steer the identical cohort.
	waitFor(t, 2*time.Second, "B adopts the canary run", func() bool {
		id, _ := b.registry.active()
		return id == canaryID && !ringHas(b, canaryID)
	})

	if err := a.Promote("operator request"); err != nil {
		t.Fatalf("Promote: %v", err)
	}
	waitFor(t, 2*time.Second, "B converges on the promotion", func() bool {
		promotions, _ := b.registry.counts()
		id, _ := b.registry.active()
		return promotions == 1 && id == ""
	})
	hist := b.registry.status().History
	if len(hist) < 2 || hist[len(hist)-1].Action != "promoted" || hist[0].Action != "started" {
		t.Fatalf("B's replicated history is wrong: %+v", hist)
	}
	waitFor(t, 2*time.Second, "B re-rings the promoted ex-canary", func() bool {
		return ringHas(b, canaryID)
	})

	// Admission config replicates the same way.
	if err := a.SetClasses([]ClassConfig{
		{Name: "gold", Tier: 0, BudgetMS: 100},
		{Name: "bronze", Tier: 2, FullHorizon: true},
	}, "gold"); err != nil {
		t.Fatalf("SetClasses: %v", err)
	}
	waitFor(t, 2*time.Second, "B adopts the admission config", func() bool {
		st := b.admission.state()
		return st.DefaultClass == "gold" && len(st.Classes) == 2
	})

	// Restart A: the replacement starts from nothing and recovers the whole
	// audit history and config from B's ack in the very first sync.
	a.Close()
	a2 := mk(peerListener(t), addrB)
	defer a2.Close()
	waitFor(t, 2*time.Second, "restarted router recovers state from its peer", func() bool {
		promotions, _ := a2.registry.counts()
		st := a2.admission.state()
		return promotions == 1 && st.DefaultClass == "gold"
	})
	hist = a2.registry.status().History
	if len(hist) < 2 || hist[len(hist)-1].Action != "promoted" {
		t.Fatalf("restarted router's recovered history is wrong: %+v", hist)
	}
}

// toggleRT is an http.RoundTripper that fails requests to one host on demand
// — one router's flaky link to a healthy replica.
type toggleRT struct {
	host string
	fail *atomic.Bool
}

func (rt toggleRT) RoundTrip(req *http.Request) (*http.Response, error) {
	if rt.fail.Load() && req.URL.Host == rt.host {
		return nil, fmt.Errorf("injected link failure to %s", rt.host)
	}
	return http.DefaultTransport.RoundTrip(req)
}

// TestQuorumOutvotesSingleRouter pins the failure detector's core promise: a
// backend one router cannot reach stays alive while the rest of the quorum
// still reaches it, and dies on both routers once a majority agrees.
func TestQuorumOutvotesSingleRouter(t *testing.T) {
	x := newFakeReplica(t, "/ckpt/a")
	y := newFakeReplica(t, "/ckpt/b")
	specs := []BackendSpec{{URL: x.url()}, {URL: y.url()}}
	xHost := x.srv.Listener.Addr().String()

	lnA, lnB := peerListener(t), peerListener(t)
	addrA, addrB := lnA.Addr().String(), lnB.Addr().String()
	phantom := deadAddr(t) // pads the cluster to 3; majority 2

	failX := &atomic.Bool{}
	const hb = 20 * time.Millisecond
	a, err := New(Config{
		Backends:          specs,
		HeartbeatInterval: hb,
		DeadAfter:         1,
		SyncInterval:      10 * time.Millisecond,
		PeerListener:      lnA,
		Peers:             []string{addrB, phantom},
		Client:            &http.Client{Transport: toggleRT{host: xHost, fail: failX}, Timeout: 2 * time.Second},
	})
	if err != nil {
		t.Fatalf("New(a): %v", err)
	}
	defer a.Close()
	b, err := New(Config{
		Backends:          specs,
		HeartbeatInterval: hb,
		DeadAfter:         1,
		SyncInterval:      10 * time.Millisecond,
		PeerListener:      lnB,
		Peers:             []string{addrA, phantom},
	})
	if err != nil {
		t.Fatalf("New(b): %v", err)
	}
	defer b.Close()
	waitFor(t, 2*time.Second, "both routers ring both replicas", func() bool {
		return ringHas(a, x.url()) && ringHas(b, x.url()) && ringHas(a, y.url()) && ringHas(b, y.url())
	})

	// Router A loses its link to replica X. A suspects, but its single vote
	// is short of the majority of 2 — X keeps its arcs on BOTH routers.
	failX.Store(true)
	waitFor(t, 2*time.Second, "A casts its local suspicion vote", func() bool {
		return a.susp.selfSuspects(x.url())
	})
	time.Sleep(6 * hb) // plenty of failed probes and gossip rounds
	if !ringHas(a, x.url()) || !ringHas(b, x.url()) {
		t.Fatal("a single router's suspicion evicted a backend the quorum still reaches")
	}
	if got := a.backends[x.url()].State(); got == StateDead {
		t.Fatal("A declared X dead on one vote of three")
	}

	// Now X really dies: B's vote joins A's, quorum is reached, and both
	// routers converge on the death.
	x.srv.Close()
	waitFor(t, 3*time.Second, "quorum kills X on both routers", func() bool {
		return !ringHas(a, x.url()) && !ringHas(b, x.url()) &&
			a.backends[x.url()].State() == StateDead && b.backends[x.url()].State() == StateDead
	})
	if !ringHas(a, y.url()) || !ringHas(b, y.url()) {
		t.Fatal("the surviving replica lost its arcs during the quorum kill")
	}
}

// TestDrainAnnounceVacatesImmediately pins the backend-initiated handoff: a
// replica's shutdown announcement pulls it out of the announced router's ring
// synchronously (zero missed-heartbeat window), relays to the peer router
// through gossip, and the latch survives later heartbeat pongs that still
// report draining=false.
func TestDrainAnnounceVacatesImmediately(t *testing.T) {
	replicas := []*fakeReplica{
		newFakeReplica(t, "/ckpt/a"),
		newFakeReplica(t, "/ckpt/b"),
		newFakeReplica(t, "/ckpt/c"),
	}
	specs := make([]BackendSpec, len(replicas))
	for i, f := range replicas {
		specs[i] = BackendSpec{URL: f.url()}
	}
	lnA, lnB := peerListener(t), peerListener(t)
	addrA, addrB := lnA.Addr().String(), lnB.Addr().String()
	const hb = 40 * time.Millisecond
	mk := func(ln net.Listener, peer string) *Router {
		rt, err := New(Config{
			Backends:          specs,
			HeartbeatInterval: hb,
			DeadAfter:         2,
			SyncInterval:      10 * time.Millisecond,
			PeerListener:      ln,
			Peers:             []string{peer},
		})
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		return rt
	}
	a := mk(lnA, addrB)
	defer a.Close()
	b := mk(lnB, addrA)
	defer b.Close()
	victim := replicas[1].url()
	waitFor(t, 2*time.Second, "both routers ring all replicas", func() bool {
		return ringHas(a, victim) && ringHas(b, victim)
	})

	// The replica announces its shutdown to router A only.
	if acked := serve.AnnounceDrain([]string{addrA}, victim, 2*time.Second); acked != 1 {
		t.Fatalf("AnnounceDrain acked by %d routers, want 1", acked)
	}
	// A processed the announcement before acking: its arcs are already gone.
	if ringHas(a, victim) {
		t.Fatal("announced replica still owns ring arcs on the announced router after the ack")
	}
	if got := a.metrics.DrainAnnounces(); got != 1 {
		t.Fatalf("drain announce counter = %d, want 1", got)
	}
	// The peer router learns through gossip, not through its own heartbeat.
	waitFor(t, 2*time.Second, "drain relays to the peer router", func() bool {
		return !ringHas(b, victim)
	})

	// Sticky: the replica has not actually flipped its drain flag (the
	// announce races the real drain in production), so heartbeat pongs keep
	// reporting draining=false. The latch must win.
	time.Sleep(4 * hb)
	if ringHas(a, victim) || ringHas(b, victim) {
		t.Fatal("a pre-drain heartbeat pong resurrected an announced-draining replica")
	}
	for _, rt := range []*Router{a, b} {
		if got := rt.backends[victim].State(); got != StateDraining {
			t.Fatalf("announced replica state %v, want draining", got)
		}
	}

	// The other replicas keep their arcs and traffic keeps flowing.
	if !ringHas(a, replicas[0].url()) || !ringHas(a, replicas[2].url()) {
		t.Fatal("drain handoff disturbed the surviving replicas' arcs")
	}
}
