package router

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// Ring is a consistent-hash ring over backend ids with virtual nodes. Each
// backend owns vnodes points on a 64-bit circle; a key is served by the
// first point clockwise from its hash. The property the fleet leans on:
// removing a backend vacates only that backend's arcs — every key it did not
// own keeps its owner, so a replica death remaps exactly the sessions that
// were on the dead replica and no others (pinned by TestRingRemapsOnlyVacatedArcs).
//
// Not safe for concurrent use; the Router guards it with its own lock.
type Ring struct {
	vnodes int
	points []ringPoint // sorted by hash
	nodes  map[string]bool
}

type ringPoint struct {
	hash uint64
	node string
}

// NewRing builds an empty ring with the given virtual-node count per
// backend (vnodes <= 0 means 64; more vnodes = smoother key spread at the
// cost of a larger sort).
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = 64
	}
	return &Ring{vnodes: vnodes, nodes: map[string]bool{}}
}

// ringHash is FNV-1a with a murmur-style 64-bit finalizer. Raw FNV-1a is not
// enough here: for short keys that differ only in a trailing counter
// ("session-0", "session-1", ...) the high bits barely move, which clumps
// ring points and — worse — collapses the canary hash-fraction axis (a 5%
// fraction could select 0% or 40% of real session-id populations). The
// finalizer avalanches every input bit across the word.
func ringHash(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	v := h.Sum64()
	v ^= v >> 33
	v *= 0xff51afd7ed558ccd
	v ^= v >> 33
	v *= 0xc4ceb9fe1a85ec53
	v ^= v >> 33
	return v
}

// Add inserts a backend's virtual nodes. Adding a present node is a no-op.
func (r *Ring) Add(node string) {
	if r.nodes[node] {
		return
	}
	r.nodes[node] = true
	for i := 0; i < r.vnodes; i++ {
		r.points = append(r.points, ringPoint{hash: ringHash(fmt.Sprintf("%s#%d", node, i)), node: node})
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
}

// Remove deletes a backend's virtual nodes. Removing an absent node is a
// no-op.
func (r *Ring) Remove(node string) {
	if !r.nodes[node] {
		return
	}
	delete(r.nodes, node)
	keep := r.points[:0]
	for _, p := range r.points {
		if p.node != node {
			keep = append(keep, p)
		}
	}
	r.points = keep
}

// Has reports ring membership.
func (r *Ring) Has(node string) bool { return r.nodes[node] }

// Len returns the number of member backends.
func (r *Ring) Len() int { return len(r.nodes) }

// Nodes returns the member backends in sorted order.
func (r *Ring) Nodes() []string {
	out := make([]string, 0, len(r.nodes))
	for n := range r.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Lookup returns the backend owning key, or "" on an empty ring.
func (r *Ring) Lookup(key string) string {
	owners := r.Successors(key, 1)
	if len(owners) == 0 {
		return ""
	}
	return owners[0]
}

// Successors returns up to n distinct backends in arc order starting at
// key's owner — the failover preference list: if the owner cannot take the
// request, the next arc's backend is the consistent second choice (every
// router instance computes the same list, so failover placement is stable
// across a fleet of routers too).
func (r *Ring) Successors(key string, n int) []string {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	h := ringHash(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	seen := map[string]bool{}
	out := make([]string, 0, n)
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.node] {
			seen[p.node] = true
			out = append(out, p.node)
		}
	}
	return out
}
