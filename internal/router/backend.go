package router

import (
	"fmt"
	"net/url"
	"sync/atomic"
	"time"
)

// BackendState is a replica's health as the router sees it.
type BackendState int32

const (
	// StateUnknown is the pre-first-heartbeat state; the backend is not in
	// the ring yet.
	StateUnknown BackendState = iota
	// StateAlive backends are ring members taking traffic.
	StateAlive
	// StateDraining backends answered their last heartbeat but reported a
	// drain in progress: out of the ring, existing work finishing.
	StateDraining
	// StateDead backends missed DeadAfter consecutive heartbeats: out of
	// the ring until they answer again.
	StateDead
)

func (s BackendState) String() string {
	switch s {
	case StateAlive:
		return "alive"
	case StateDraining:
		return "draining"
	case StateDead:
		return "dead"
	default:
		return "unknown"
	}
}

// BackendSpec names one replica: its HTTP base URL (control plane and data
// fallback) and optionally its framed-transport address (preferred data
// path).
type BackendSpec struct {
	// URL is the replica's HTTP base, e.g. "http://127.0.0.1:8080".
	URL string `json:"url"`
	// FleetAddr is the replica's framed-TCP listener, e.g.
	// "127.0.0.1:9090". Empty means HTTP only.
	FleetAddr string `json:"fleet_addr,omitempty"`
}

func (s BackendSpec) validate() error {
	u, err := url.Parse(s.URL)
	if err != nil || u.Scheme == "" || u.Host == "" {
		return fmt.Errorf("router: backend URL %q must be absolute (http://host:port)", s.URL)
	}
	return nil
}

// backend is the router's live view of one replica. Hot-path fields are
// atomics so the request path reads them without the router lock; the
// heartbeat loop is the only writer of state transitions (under rt.mu).
type backend struct {
	spec BackendSpec
	id   string // ring identity: the URL

	state  atomic.Int32
	misses int // consecutive failed heartbeats; heartbeat loop only

	// drainAnnounced latches when the replica announces its own drain over
	// the fleet channel (serve.AnnounceDrain) or a peer gossips one it
	// received. It is sticky until the process actually dies — a pre-drain
	// heartbeat pong still reporting draining=false must not resurrect the
	// backend into the ring — and clears on death so a restarted process can
	// rejoin.
	drainAnnounced atomic.Bool

	// Probe schedule and recovery damping, all written under rt.mu:
	nextProbe time.Time // when this backend's next health probe is due
	flaps     int       // recent deaths (decays after flapWindow of quiet)
	lastDeath time.Time
	readmitAt time.Time // recovery before this instant stays out of the ring

	inflight atomic.Int64 // router-side in-flight requests

	// From the last successful heartbeat:
	version   atomic.Uint64 // model generation
	modelPath atomic.Value  // string: checkpoint path the generation came from
	capacity  atomic.Int64  // queueCap + workers·maxBatch, admission's denominator
	rttMicros atomic.Int64  // EWMA heartbeat round-trip, microseconds
}

func newBackend(spec BackendSpec) *backend {
	b := &backend{spec: spec, id: spec.URL}
	b.modelPath.Store("")
	return b
}

func (b *backend) State() BackendState { return BackendState(b.state.Load()) }

func (b *backend) setState(s BackendState) { b.state.Store(int32(s)) }

// observeRTT folds one heartbeat round-trip into the EWMA (α = 1/4).
func (b *backend) observeRTT(micros int64) {
	old := b.rttMicros.Load()
	if old == 0 {
		b.rttMicros.Store(micros)
		return
	}
	b.rttMicros.Store(old + (micros-old)/4)
}

// capacityOrDefault returns the backend's admission capacity, with a
// conservative default before the first heartbeat has reported real numbers.
func (b *backend) capacityOrDefault() int64 {
	if c := b.capacity.Load(); c > 0 {
		return c
	}
	return 64
}

// BackendInfo is the /v1/fleet JSON view of one backend.
type BackendInfo struct {
	URL          string  `json:"url"`
	FleetAddr    string  `json:"fleet_addr,omitempty"`
	State        string  `json:"state"`
	ModelVersion uint64  `json:"model_version"`
	ModelPath    string  `json:"model_path,omitempty"`
	InFlight     int64   `json:"in_flight"`
	Capacity     int64   `json:"capacity"`
	RTTMillis    float64 `json:"rtt_ms"`
}

func (b *backend) info() BackendInfo {
	return BackendInfo{
		URL:          b.spec.URL,
		FleetAddr:    b.spec.FleetAddr,
		State:        b.State().String(),
		ModelVersion: b.version.Load(),
		ModelPath:    b.modelPath.Load().(string),
		InFlight:     b.inflight.Load(),
		Capacity:     b.capacityOrDefault(),
		RTTMillis:    float64(b.rttMicros.Load()) / 1000,
	}
}
