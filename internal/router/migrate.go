package router

import (
	"encoding/json"
	"net/http"

	"skipper/internal/stream"
	"skipper/internal/trace"
)

// Session migration: when a replica starts draining, the router pulls its
// live streaming sessions over the fleet channel — export seals the session
// at the source (a late window gets CodeMoved, never a stale answer) — and
// imports each one at its ring successor. Clients discover the new home by
// re-placing through /v1/stream/place and resume bit-identically from the
// migrated membrane state. An import failure re-imports the record at the
// source so state is never stranded in flight.

// migrateSessions drains every streaming session off b. Runs in its own
// goroutine (spawned on the draining transition), tracked by rt.wg.
func (rt *Router) migrateSessions(b *backend) {
	defer rt.wg.Done()
	rtyp, payload, err := rt.transport.mexchange(b.spec.FleetAddr, stream.TypeList, nil)
	if err != nil || rtyp != stream.TypeListing {
		// A replica dying faster than it drains has no sessions to offer;
		// its clients will resume from durable snapshots instead.
		rt.tracer.Event(trace.TrackRouter, "migrate_list_failed")
		return
	}
	var listing stream.ListingReply
	if err := json.Unmarshal(payload, &listing); err != nil {
		rt.tracer.Event(trace.TrackRouter, "migrate_list_failed")
		return
	}
	for _, id := range listing.Sessions {
		select {
		case <-rt.stop:
			return
		default:
		}
		if rt.migrateOne(b, id) {
			rt.metrics.observeMigration(true)
		} else {
			rt.metrics.observeMigration(false)
		}
	}
}

// migrateOne moves one session from the draining backend to its ring
// successor, reporting success.
func (rt *Router) migrateOne(src *backend, id string) bool {
	dst := rt.migrationTarget(id, src)
	if dst == nil {
		rt.tracer.Event(trace.TrackRouter, "migrate_no_target")
		return false
	}
	body, _ := json.Marshal(stream.ExportRequest{Session: id})
	rtyp, rec, err := rt.transport.mexchange(src.spec.FleetAddr, stream.TypeExport, body)
	if err != nil || rtyp != stream.TypeState {
		rt.tracer.Event(trace.TrackRouter, "migrate_export_failed")
		return false
	}
	rtyp, _, err = rt.transport.mexchange(dst.spec.FleetAddr, stream.TypeImport, rec)
	if err == nil && rtyp == stream.TypeImported {
		rt.tracer.Event(trace.TrackRouter, "migrate_session")
		return true
	}
	// The exported record is the only copy of the membrane state now; put
	// it back where it came from rather than lose it (the source is
	// draining, not dead — it can still snapshot the state durably).
	rt.tracer.Event(trace.TrackRouter, "migrate_import_failed")
	if rtyp, _, rerr := rt.transport.mexchange(src.spec.FleetAddr, stream.TypeImport, rec); rerr != nil || rtyp != stream.TypeImported {
		rt.tracer.Event(trace.TrackRouter, "migrate_reimport_failed")
	}
	return false
}

// migrationTarget picks where a draining backend's session should move: the
// first alive streaming-capable candidate on the session's ring walk that is
// not the source.
func (rt *Router) migrationTarget(id string, src *backend) *backend {
	for _, b := range rt.candidates(id) {
		if b == nil || b == src {
			continue
		}
		if b.State() == StateAlive && b.spec.FleetAddr != "" {
			return b
		}
	}
	return nil
}

// handleStreamPlace answers GET /v1/stream/place?session=ID: which replica a
// streaming session should (re)connect to. The placement follows the same
// ring walk the migration uses, so a drained session's client is sent to the
// replica its state moved to.
func (rt *Router) handleStreamPlace(w http.ResponseWriter, r *http.Request) {
	session := r.URL.Query().Get("session")
	if session == "" {
		httpError(w, http.StatusBadRequest, "session query parameter required")
		return
	}
	for _, b := range rt.candidates(session) {
		if b != nil && b.State() == StateAlive && b.spec.FleetAddr != "" {
			writeJSON(w, http.StatusOK, stream.Placement{
				Session:   session,
				URL:       b.spec.URL,
				FleetAddr: b.spec.FleetAddr,
			})
			return
		}
	}
	httpError(w, http.StatusServiceUnavailable, "no alive streaming backend")
}
