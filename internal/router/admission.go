package router

import (
	"sync"
	"time"
)

// ClassConfig declares one admission class: a tier in the shed order, an
// optional token-bucket rate cap, a latency budget for the SLO controller,
// and whether the class runs the full horizon. The defaults model the
// serving story the paper's early exit opens up: interactive traffic rides
// the early exit and is protected, bulk traffic runs every timestep and is
// the first to go when the fleet saturates — replacing the single 429 cliff
// with tiers that degrade the expensive work first.
type ClassConfig struct {
	Name string `json:"name"`
	// Tier is the shed order: higher tiers shed first. Tier 0 sheds only
	// when the fleet is at hard capacity.
	Tier int `json:"tier"`
	// RatePerSec caps the class's admitted request rate (token bucket).
	// Zero means uncapped.
	RatePerSec float64 `json:"rate_per_sec,omitempty"`
	// Burst is the bucket depth; zero with a rate means 2·RatePerSec.
	Burst float64 `json:"burst,omitempty"`
	// BudgetMS is the class's latency SLO; the router tunes the early-exit
	// margin against it and forwards it as the request budget when the
	// request carries none. Zero means no budget.
	BudgetMS int `json:"budget_ms,omitempty"`
	// FullHorizon forces EarlyExit off for the class's requests.
	FullHorizon bool `json:"full_horizon,omitempty"`
	// ShedAtLoad is the fleet load factor (in-flight over capacity) above
	// which this class is shed. Zero derives it from Tier: 1 − 0.15·Tier,
	// floored at 0.4.
	ShedAtLoad float64 `json:"shed_at_load,omitempty"`
}

func (c ClassConfig) shedAt() float64 {
	if c.ShedAtLoad > 0 {
		return c.ShedAtLoad
	}
	v := 1 - 0.15*float64(c.Tier)
	if v < 0.4 {
		v = 0.4
	}
	return v
}

// DefaultClasses is the admission configuration used when a Router's Config
// names none: protected interactive traffic on the early exit, a standard
// default tier, and full-horizon bulk work shed first under load.
func DefaultClasses() []ClassConfig {
	return []ClassConfig{
		{Name: "interactive", Tier: 0, BudgetMS: 250},
		{Name: "standard", Tier: 1, BudgetMS: 1000},
		{Name: "bulk", Tier: 2, FullHorizon: true},
	}
}

// Shed reasons for the router's shed counter.
const (
	shedReasonLoad     = "load_shed"
	shedReasonRate     = "rate_limit"
	shedReasonNoFleet  = "no_backends"
	shedReasonCapacity = "backend_shed" // a backend answered 429/503 after failover
)

// classState is one class's runtime state: its token bucket and SLO
// controller.
type classState struct {
	cfg    ClassConfig
	tokens float64
	last   time.Time
	slo    *sloController
}

// admission is the tiered admission controller. All methods are safe for
// concurrent use. The configuration is replicated across the router tier: a
// runtime change (setLocal) bumps a version stamped with this router's id,
// and gossip carries the versioned config to the peers, which adopt it.
type admission struct {
	mu           sync.Mutex
	classes      map[string]*classState
	defaultClass string
	now          func() time.Time // seam for deterministic tests

	selfID  string // this router's peer id; stamps local mutations
	version uint64 // bumps on every local mutation; adopted from peers
	mutator string // peer id of the router whose mutation this version carries
}

func newAdmission(classes []ClassConfig, defaultClass string, now func() time.Time) *admission {
	if len(classes) == 0 {
		classes = DefaultClasses()
	}
	if now == nil {
		now = time.Now
	}
	a := &admission{now: now}
	a.rebuildLocked(classes, defaultClass)
	return a
}

// rebuildLocked replaces the class table. A class whose config is unchanged
// keeps its runtime state — token-bucket level and SLO window survive a
// config push that only touched other classes. Callers hold a.mu (or own the
// struct exclusively, as in newAdmission).
func (a *admission) rebuildLocked(classes []ClassConfig, defaultClass string) {
	prev := a.classes
	a.classes = map[string]*classState{}
	a.defaultClass = defaultClass
	for _, c := range classes {
		if c.RatePerSec > 0 && c.Burst <= 0 {
			c.Burst = 2 * c.RatePerSec
		}
		if old, ok := prev[c.Name]; ok && old.cfg == c {
			a.classes[c.Name] = old
			continue
		}
		cs := &classState{cfg: c, last: a.now()}
		if c.RatePerSec > 0 {
			cs.tokens = c.Burst
		}
		if c.BudgetMS > 0 && !c.FullHorizon {
			cs.slo = newSLOController(float64(c.BudgetMS))
		}
		a.classes[c.Name] = cs
	}
	if _, ok := a.classes[a.defaultClass]; !ok {
		// The default class must exist; fall back to the lexically first
		// configured class.
		a.defaultClass = ""
		for name := range a.classes {
			if a.defaultClass == "" || name < a.defaultClass {
				a.defaultClass = name
			}
		}
	}
}

// admissionState is the admission config on the gossip wire.
type admissionState struct {
	Version      uint64        `json:"version"`
	Mutator      string        `json:"mutator,omitempty"`
	DefaultClass string        `json:"default_class"`
	Classes      []ClassConfig `json:"classes"`
}

// state snapshots the replicated admission config.
func (a *admission) state() admissionState {
	a.mu.Lock()
	defer a.mu.Unlock()
	st := admissionState{Version: a.version, Mutator: a.mutator, DefaultClass: a.defaultClass}
	names := make([]string, 0, len(a.classes))
	for name := range a.classes {
		names = append(names, name)
	}
	sortStrings(names)
	for _, name := range names {
		st.Classes = append(st.Classes, a.classes[name].cfg)
	}
	return st
}

// setLocal applies an operator config change on this router and stamps it for
// replication.
func (a *admission) setLocal(classes []ClassConfig, defaultClass string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.version++
	a.mutator = a.selfID
	a.rebuildLocked(classes, defaultClass)
}

// adopt folds a peer's admission config in. The higher version wins; a
// version tie breaks toward the lexically lower mutator so concurrent
// mutations on different routers converge on one of them instead of
// ping-ponging. Returns whether the peer's config was adopted.
func (a *admission) adopt(st admissionState) bool {
	if len(st.Classes) == 0 {
		return false
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if st.Version < a.version {
		return false
	}
	if st.Version == a.version && st.Mutator >= a.mutator {
		return false
	}
	a.version = st.Version
	a.mutator = st.Mutator
	a.rebuildLocked(st.Classes, st.DefaultClass)
	return true
}

// resolve maps a request's class label to its state, falling back to the
// default class for unknown or empty labels (an open fleet cannot 400 every
// request whose client predates a class rename).
func (a *admission) resolve(name string) *classState {
	a.mu.Lock()
	defer a.mu.Unlock()
	if cs, ok := a.classes[name]; ok {
		return cs
	}
	return a.classes[a.defaultClass]
}

// admit decides one request: "" to admit, else the shed reason. load is the
// fleet's current load factor (in-flight over capacity).
func (a *admission) admit(cs *classState, load float64) string {
	a.mu.Lock()
	defer a.mu.Unlock()
	if load >= cs.cfg.shedAt() {
		return shedReasonLoad
	}
	if cs.cfg.RatePerSec > 0 {
		now := a.now()
		cs.tokens += now.Sub(cs.last).Seconds() * cs.cfg.RatePerSec
		cs.last = now
		if cs.tokens > cs.cfg.Burst {
			cs.tokens = cs.cfg.Burst
		}
		if cs.tokens < 1 {
			return shedReasonRate
		}
		cs.tokens--
	}
	return ""
}

// classNames returns the configured class names, sorted for stable metrics
// rendering.
func (a *admission) classNames() []string {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]string, 0, len(a.classes))
	for name := range a.classes {
		out = append(out, name)
	}
	sortStrings(out)
	return out
}
