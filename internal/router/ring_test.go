package router

import (
	"fmt"
	"testing"
)

func TestRingRemapsOnlyVacatedArcs(t *testing.T) {
	r := NewRing(64)
	nodes := []string{"a", "b", "c", "d"}
	for _, n := range nodes {
		r.Add(n)
	}
	const keys = 2000
	before := map[string]string{}
	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("session-%d", i)
		before[k] = r.Lookup(k)
	}
	r.Remove("b")
	moved, fromB := 0, 0
	for k, owner := range before {
		now := r.Lookup(k)
		if now == "b" {
			t.Fatalf("key %s still maps to removed node", k)
		}
		if now != owner {
			moved++
			if owner != "b" {
				t.Fatalf("key %s moved from surviving node %s to %s", k, owner, now)
			}
		}
		if owner == "b" {
			fromB++
		}
	}
	if moved != fromB {
		t.Fatalf("moved %d keys but only %d were on the removed node", moved, fromB)
	}
	if fromB == 0 {
		t.Fatal("test vacuous: no keys were on node b")
	}

	// Re-adding restores exactly the old mapping (hash positions are pure
	// functions of the node name).
	r.Add("b")
	for k, owner := range before {
		if got := r.Lookup(k); got != owner {
			t.Fatalf("after re-add, key %s maps to %s, want %s", k, got, owner)
		}
	}
}

func TestRingSpreadsKeys(t *testing.T) {
	r := NewRing(64)
	for i := 0; i < 4; i++ {
		r.Add(fmt.Sprintf("replica-%d", i))
	}
	counts := map[string]int{}
	const keys = 4000
	for i := 0; i < keys; i++ {
		counts[r.Lookup(fmt.Sprintf("s%d", i))]++
	}
	for node, c := range counts {
		// With 64 vnodes the spread is coarse but every node must carry a
		// real share: at least a third of its fair 25%.
		if c < keys/12 {
			t.Fatalf("node %s owns only %d of %d keys", node, c, keys)
		}
	}
	if len(counts) != 4 {
		t.Fatalf("only %d of 4 nodes own keys", len(counts))
	}
}

// Real session-id populations are short strings differing only in a trailing
// counter — exactly the shape raw FNV-1a fails to avalanche. The hash must
// stay uniform on such keys or canary fractions and ring balance both break.
func TestRingHashUniformOnSequentialKeys(t *testing.T) {
	const keys = 2000
	buckets := make([]int, 10)
	for i := 0; i < keys; i++ {
		f := hashFraction(fmt.Sprintf("session-%d", i))
		if f < 0 || f >= 1 {
			t.Fatalf("hashFraction out of range: %v", f)
		}
		buckets[int(f*10)]++
	}
	for d, c := range buckets {
		// Fair share is 200 per decile; allow a wide 2x band — the failure
		// mode this pins is total collapse (deciles with 0%), not jitter.
		if c < keys/20 || c > keys/5*2 {
			t.Fatalf("decile %d holds %d of %d keys (want ~%d)", d, c, keys, keys/10)
		}
	}
}

func TestRingSuccessorsDistinctAndStable(t *testing.T) {
	r := NewRing(32)
	for _, n := range []string{"x", "y", "z"} {
		r.Add(n)
	}
	succ := r.Successors("some-session", 3)
	if len(succ) != 3 {
		t.Fatalf("successors: %v", succ)
	}
	seen := map[string]bool{}
	for _, s := range succ {
		if seen[s] {
			t.Fatalf("duplicate successor %s in %v", s, succ)
		}
		seen[s] = true
	}
	again := r.Successors("some-session", 3)
	for i := range succ {
		if succ[i] != again[i] {
			t.Fatalf("successor order unstable: %v vs %v", succ, again)
		}
	}
	if r.Lookup("some-session") != succ[0] {
		t.Fatal("Lookup must equal first successor")
	}
}

func TestRingEmptyAndSingle(t *testing.T) {
	r := NewRing(8)
	if r.Lookup("k") != "" {
		t.Fatal("empty ring must return no owner")
	}
	r.Add("only")
	if r.Lookup("k") != "only" {
		t.Fatal("single-node ring must own everything")
	}
	r.Remove("only")
	if r.Lookup("k") != "" || r.Len() != 0 {
		t.Fatal("ring not empty after removing the only node")
	}
}
