package router

import (
	"testing"
	"time"

	"skipper/internal/core"
)

// fakeClock drives the token buckets deterministically.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func TestAdmissionTokenBucket(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	a := newAdmission([]ClassConfig{
		{Name: "bulk", Tier: 2, RatePerSec: 10, Burst: 2},
	}, "bulk", clk.now)
	cs := a.resolve("bulk")

	if r := a.admit(cs, 0); r != "" {
		t.Fatalf("first admit: %q", r)
	}
	if r := a.admit(cs, 0); r != "" {
		t.Fatalf("second admit (burst): %q", r)
	}
	if r := a.admit(cs, 0); r != shedReasonRate {
		t.Fatalf("third admit = %q, want %q", r, shedReasonRate)
	}
	clk.advance(100 * time.Millisecond) // refills exactly one token at 10/s
	if r := a.admit(cs, 0); r != "" {
		t.Fatalf("admit after refill: %q", r)
	}
	if r := a.admit(cs, 0); r != shedReasonRate {
		t.Fatalf("bucket should be empty again, got %q", r)
	}
}

func TestAdmissionTierShedOrder(t *testing.T) {
	a := newAdmission(DefaultClasses(), "standard", nil)
	interactive := a.resolve("interactive") // tier 0: sheds at 1.0
	standard := a.resolve("standard")       // tier 1: sheds at 0.85
	bulk := a.resolve("bulk")               // tier 2: sheds at 0.70

	// Moderate load: only bulk sheds.
	if r := a.admit(bulk, 0.75); r != shedReasonLoad {
		t.Fatalf("bulk at load 0.75 = %q, want %q", r, shedReasonLoad)
	}
	if r := a.admit(standard, 0.75); r != "" {
		t.Fatalf("standard at load 0.75 = %q, want admit", r)
	}
	if r := a.admit(interactive, 0.75); r != "" {
		t.Fatalf("interactive at load 0.75 = %q, want admit", r)
	}
	// Heavy load: standard goes too, interactive survives. This is the
	// paper-informed ordering — full-horizon work (every timestep) sheds
	// before early-exit traffic that finishes in a fraction of the steps.
	if r := a.admit(standard, 0.9); r != shedReasonLoad {
		t.Fatalf("standard at load 0.9 = %q, want %q", r, shedReasonLoad)
	}
	if r := a.admit(interactive, 0.9); r != "" {
		t.Fatalf("interactive at load 0.9 = %q, want admit", r)
	}
	// Hard saturation: everyone sheds.
	if r := a.admit(interactive, 1.0); r != shedReasonLoad {
		t.Fatalf("interactive at load 1.0 = %q, want %q", r, shedReasonLoad)
	}
}

func TestAdmissionResolveFallsBack(t *testing.T) {
	a := newAdmission(DefaultClasses(), "standard", nil)
	if cs := a.resolve(""); cs.cfg.Name != "standard" {
		t.Fatalf("empty class resolved to %q", cs.cfg.Name)
	}
	if cs := a.resolve("no-such-class"); cs.cfg.Name != "standard" {
		t.Fatalf("unknown class resolved to %q", cs.cfg.Name)
	}
	// A config that misnames the default still yields a working admission.
	b := newAdmission([]ClassConfig{{Name: "only", Tier: 0}}, "missing", nil)
	if cs := b.resolve("anything"); cs == nil || cs.cfg.Name != "only" {
		t.Fatal("fallback default class not wired")
	}
}

func TestSLOControllerWalksMargin(t *testing.T) {
	s := newSLOController(100) // 100ms budget
	start := s.exitMargin()
	if start != core.DefaultExitMargin {
		t.Fatalf("initial margin %v, want server default %v", start, core.DefaultExitMargin)
	}
	// Sustained p99 over budget: the margin must fall (exit earlier).
	for i := 0; i < 4*adjustEvery; i++ {
		s.observe(250)
	}
	lowered := s.exitMargin()
	if lowered >= start {
		t.Fatalf("margin %v did not drop under sustained overload (start %v)", lowered, start)
	}
	// Sustained p99 far under budget: the margin climbs back.
	for i := 0; i < 20*adjustEvery; i++ {
		s.observe(10)
	}
	raised := s.exitMargin()
	if raised <= lowered {
		t.Fatalf("margin %v did not recover from %v with latency headroom", raised, lowered)
	}
	if raised > maxMargin || raised < minMargin {
		t.Fatalf("margin %v escaped [%v, %v]", raised, minMargin, maxMargin)
	}
	// Clamps hold under extreme pressure.
	for i := 0; i < 100*adjustEvery; i++ {
		s.observe(10_000)
	}
	if m := s.exitMargin(); m != minMargin {
		t.Fatalf("margin %v, want clamp at %v", m, minMargin)
	}
	// Nil controller is inert and answers the zero sentinel.
	var nilC *sloController
	nilC.observe(5)
	if nilC.exitMargin() != 0 || nilC.p99() != 0 {
		t.Fatal("nil controller must answer zeros")
	}
}
