package router

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"skipper/internal/stats"
)

// Metrics is the router's registry, rendered in the same Prometheus text
// format as the rest of the repo (skipper_router_* namespace). All mutators
// are safe for concurrent use.
type Metrics struct {
	mu sync.Mutex

	requests map[string]int64 // by HTTP status code answered to the client
	latency  *stats.Histogram // end-to-end routed request seconds
	rtt      *stats.Histogram // backend exchange seconds (the backend_rtt span)

	shed      map[string]int64 // by "class|reason"
	failovers int64            // requests retried on another backend after a transport error
	fallbacks int64            // framed exchanges that fell back to HTTP mid-request
	remaps    int64            // ring membership changes (arcs vacated or restored)
	deaths    int64            // backends declared dead by the heartbeat

	peerSyncs        int64 // completed gossip round trips with peer routers
	peerSyncFailures int64 // gossip rounds that failed (dial, frame, or decode)
	drainAnnounces   int64 // replica drain announcements accepted on the peer channel

	sessionsMigrated  int64 // streaming sessions pulled off draining replicas
	migrationFailures int64 // sessions the drain migration could not move

	// gauges, read at render time
	backendStates func() map[string]int // state name -> count
	ringSize      func() int
	canary        func() CanaryStatus
	classGauges   func() []classGauge
}

// classGauge is one class's rendered state: the SLO controller's current
// margin and recent p99.
type classGauge struct {
	name   string
	margin float64
	p99MS  float64
}

func newMetrics() *Metrics {
	return &Metrics{
		requests: map[string]int64{},
		shed:     map[string]int64{},
		// 0.5ms .. ~16s, matching serve's request histogram resolution.
		latency: stats.NewHistogram(stats.ExponentialBounds(0.0005, 2, 15)...),
		rtt:     stats.NewHistogram(stats.ExponentialBounds(0.0005, 2, 15)...),
	}
}

func (m *Metrics) observeRequest(code int, seconds float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.requests[fmt.Sprintf("%d", code)]++
	m.latency.Observe(seconds)
}

func (m *Metrics) observeRTT(seconds float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.rtt.Observe(seconds)
}

func (m *Metrics) observeShed(class, reason string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.shed[class+"|"+reason]++
}

func (m *Metrics) observeFailover() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.failovers++
}

func (m *Metrics) observeFallback() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.fallbacks++
}

func (m *Metrics) observeRemap() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.remaps++
}

func (m *Metrics) observeDeath() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.deaths++
}

func (m *Metrics) observePeerSync(ok bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if ok {
		m.peerSyncs++
	} else {
		m.peerSyncFailures++
	}
}

func (m *Metrics) observeDrainAnnounce() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.drainAnnounces++
}

func (m *Metrics) observeMigration(ok bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if ok {
		m.sessionsMigrated++
	} else {
		m.migrationFailures++
	}
}

// SessionsMigrated returns the migrated-session counter (tests, smoke).
func (m *Metrics) SessionsMigrated() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.sessionsMigrated
}

// RequestCount returns the counted requests for one status code (tests).
func (m *Metrics) RequestCount(code int) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.requests[fmt.Sprintf("%d", code)]
}

// ShedCount returns the shed counter for one (class, reason) pair (tests).
func (m *Metrics) ShedCount(class, reason string) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.shed[class+"|"+reason]
}

// Failovers returns the failover counter (tests).
func (m *Metrics) Failovers() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.failovers
}

// Remaps returns the ring-remap counter (tests: flap-damping churn bounds).
func (m *Metrics) Remaps() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.remaps
}

// DrainAnnounces returns the accepted drain-announcement counter (tests).
func (m *Metrics) DrainAnnounces() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.drainAnnounces
}

// Render writes the registry in Prometheus text exposition format.
func (m *Metrics) Render(w io.Writer) {
	m.mu.Lock()
	defer m.mu.Unlock()

	fmt.Fprintln(w, "# HELP skipper_router_requests_total Requests answered by the router, by HTTP status code.")
	fmt.Fprintln(w, "# TYPE skipper_router_requests_total counter")
	codes := make([]string, 0, len(m.requests))
	for c := range m.requests {
		codes = append(codes, c)
	}
	sort.Strings(codes)
	for _, c := range codes {
		fmt.Fprintf(w, "skipper_router_requests_total{code=%q} %d\n", c, m.requests[c])
	}

	renderHist(w, "skipper_router_request_latency_seconds", "End-to-end routed request latency.", m.latency)
	renderHist(w, "skipper_router_backend_rtt_seconds", "Backend exchange round-trip (framed or HTTP).", m.rtt)

	fmt.Fprintln(w, "# HELP skipper_router_shed_total Requests shed by admission control, by class and reason.")
	fmt.Fprintln(w, "# TYPE skipper_router_shed_total counter")
	keys := make([]string, 0, len(m.shed))
	for k := range m.shed {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		var class, reason string
		for i := range k {
			if k[i] == '|' {
				class, reason = k[:i], k[i+1:]
				break
			}
		}
		fmt.Fprintf(w, "skipper_router_shed_total{class=%q,reason=%q} %d\n", class, reason, m.shed[k])
	}

	counter(w, "skipper_router_failover_total", "Requests retried on a successor backend after a transport error.", m.failovers)
	counter(w, "skipper_router_http_fallback_total", "Framed exchanges completed over the HTTP fallback.", m.fallbacks)
	counter(w, "skipper_router_ring_remaps_total", "Hash-ring membership changes (arcs vacated or restored).", m.remaps)
	counter(w, "skipper_router_backend_deaths_total", "Backends declared dead after missed heartbeats.", m.deaths)
	counter(w, "skipper_router_peer_syncs_total", "Completed gossip round trips with peer routers.", m.peerSyncs)
	counter(w, "skipper_router_peer_sync_failures_total", "Failed gossip rounds (dial, frame, or decode error).", m.peerSyncFailures)
	counter(w, "skipper_router_drain_announces_total", "Replica drain announcements accepted on the peer channel.", m.drainAnnounces)
	counter(w, "skipper_router_sessions_migrated_total", "Streaming sessions pulled off draining replicas.", m.sessionsMigrated)
	counter(w, "skipper_router_session_migration_failures_total", "Sessions a drain migration failed to move.", m.migrationFailures)

	if m.backendStates != nil {
		states := m.backendStates()
		fmt.Fprintln(w, "# HELP skipper_router_backends Backends by health state.")
		fmt.Fprintln(w, "# TYPE skipper_router_backends gauge")
		for _, s := range []string{"alive", "draining", "dead", "unknown"} {
			fmt.Fprintf(w, "skipper_router_backends{state=%q} %d\n", s, states[s])
		}
	}
	if m.ringSize != nil {
		gauge(w, "skipper_router_ring_members", "Backends currently owning hash-ring arcs.", float64(m.ringSize()))
	}
	if m.canary != nil {
		st := m.canary()
		active := 0.0
		if st.Active {
			active = 1
		}
		gauge(w, "skipper_router_canary_active", "Whether a canary generation is taking traffic.", active)
		counter(w, "skipper_router_canary_promotions_total", "Canary generations promoted to the fleet.", st.Promotions)
		counter(w, "skipper_router_canary_rollbacks_total", "Canary generations rolled back.", st.Rollbacks)
	}
	if m.classGauges != nil {
		gs := m.classGauges()
		fmt.Fprintln(w, "# HELP skipper_router_class_exit_margin Early-exit confidence margin the SLO controller currently forwards, by class.")
		fmt.Fprintln(w, "# TYPE skipper_router_class_exit_margin gauge")
		for _, g := range gs {
			fmt.Fprintf(w, "skipper_router_class_exit_margin{class=%q} %g\n", g.name, g.margin)
		}
		fmt.Fprintln(w, "# HELP skipper_router_class_p99_ms Recent-window p99 latency, by class.")
		fmt.Fprintln(w, "# TYPE skipper_router_class_p99_ms gauge")
		for _, g := range gs {
			fmt.Fprintf(w, "skipper_router_class_p99_ms{class=%q} %g\n", g.name, g.p99MS)
		}
	}
}

func counter(w io.Writer, name, help string, v int64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
}

func gauge(w io.Writer, name, help string, v float64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
}

func renderHist(w io.Writer, name, help string, h *stats.Histogram) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	cum := h.Cumulative()
	for i, b := range h.Bounds() {
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, fmt.Sprintf("%g", b), cum[i])
	}
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, h.N())
	fmt.Fprintf(w, "%s_sum %g\n", name, h.Sum())
	fmt.Fprintf(w, "%s_count %d\n", name, h.N())
}
