package router

import (
	"sort"
	"sync"
	"time"
)

// suspicion is the quorum failure detector's vote book. Each router keeps its
// own *local* verdict per backend — missed heartbeats or a data-path
// transport failure make a backend locally suspect — and learns every peer's
// verdicts through gossip. A backend is confirmed dead only when a majority
// of the configured router cluster suspects it, so one router's flaky link
// to a healthy replica can never evict it: that router casts a single vote
// and is outvoted by the peers whose probes still succeed.
//
// Votes from a peer that has not synced within staleAfter are discarded (a
// dead router cannot keep a backend dead), but the quorum denominator stays
// the full configured cluster size: with 3 routers a backend needs 2
// suspecting votes whether or not the third router is reachable. A
// single-router cluster has majority 1, which collapses the detector to the
// pre-HA behavior — local suspicion is death.
type suspicion struct {
	mu         sync.Mutex
	cluster    int // routers in the configured cluster, self included
	staleAfter time.Duration
	now        func() time.Time // seam for deterministic tests

	self  map[string]bool       // backendID -> locally suspect
	peers map[string]*peerVotes // peerID -> last synced verdicts
}

// peerVotes is one peer's last reported suspicion set.
type peerVotes struct {
	suspects map[string]bool
	at       time.Time
}

func newSuspicion(cluster int, staleAfter time.Duration, now func() time.Time) *suspicion {
	if cluster < 1 {
		cluster = 1
	}
	if now == nil {
		now = time.Now
	}
	return &suspicion{
		cluster:    cluster,
		staleAfter: staleAfter,
		now:        now,
		self:       map[string]bool{},
		peers:      map[string]*peerVotes{},
	}
}

// majority is the vote count that confirms a death: floor(cluster/2)+1.
func (s *suspicion) majority() int { return s.cluster/2 + 1 }

// suspect casts the local vote against a backend. Returns true when the vote
// is new (the caller pushes a sync so peers hear it promptly).
func (s *suspicion) suspect(backendID string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.self[backendID] {
		return false
	}
	s.self[backendID] = true
	return true
}

// clear withdraws the local vote. Returns true when a vote was present.
func (s *suspicion) clear(backendID string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.self[backendID] {
		return false
	}
	delete(s.self, backendID)
	return true
}

// selfSuspects reports the local verdict (the data path uses it to order
// candidates; a locally-suspect backend is tried last, not skipped).
func (s *suspicion) selfSuspects(backendID string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.self[backendID]
}

// selfVotes returns the local suspicion set, sorted (the gossip payload).
func (s *suspicion) selfVotes() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.self))
	for id := range s.self {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// record replaces one peer's verdicts with its latest sync.
func (s *suspicion) record(peerID string, suspects []string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	set := make(map[string]bool, len(suspects))
	for _, id := range suspects {
		set[id] = true
	}
	s.peers[peerID] = &peerVotes{suspects: set, at: s.now()}
}

// votes counts the suspecting routers for a backend: the local vote plus
// every fresh peer vote.
func (s *suspicion) votes(backendID string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	if s.self[backendID] {
		n++
	}
	cutoff := s.now().Add(-s.staleAfter)
	for _, pv := range s.peers {
		if s.staleAfter > 0 && pv.at.Before(cutoff) {
			continue
		}
		if pv.suspects[backendID] {
			n++
		}
	}
	return n
}

// confirmed reports whether the cluster has reached quorum on a backend's
// death.
func (s *suspicion) confirmed(backendID string) bool {
	return s.votes(backendID) >= s.majority()
}
