package router

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"skipper/internal/frame"
	"strconv"
	"sync"
	"time"

	"skipper/internal/serve"
)

// transport moves requests and heartbeats between the router and its
// backends. The preferred data path is the framed-TCP protocol serve.Fleet*
// defines over dist's CRC envelope — persistent connections, no HTTP
// parsing per request; when a backend has no fleet listener, or a framed
// exchange fails mid-flight, the same request falls back to HTTP. Data-plane
// exchanges (infer, stream migration) multiplex over one muxConn per backend
// under FleetMux correlation envelopes; heartbeats keep a small pool of
// one-at-a-time connections so a probe measures a clean round-trip.
type transport struct {
	client  *http.Client
	timeout time.Duration // dial + per-exchange deadline

	mu    sync.Mutex
	pools map[string]*connPool // by fleet addr
	muxes map[string]*muxConn  // by fleet addr
}

func newTransport(client *http.Client, timeout time.Duration) *transport {
	if client == nil {
		client = &http.Client{Timeout: timeout}
	}
	return &transport{
		client:  client,
		timeout: timeout,
		pools:   map[string]*connPool{},
		muxes:   map[string]*muxConn{},
	}
}

// connPool is a tiny free-list of framed connections to one backend.
type connPool struct {
	addr string
	mu   sync.Mutex
	idle []net.Conn
}

func (tr *transport) pool(addr string) *connPool {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	p, ok := tr.pools[addr]
	if !ok {
		p = &connPool{addr: addr}
		tr.pools[addr] = p
	}
	return p
}

func (p *connPool) get(timeout time.Duration) (net.Conn, error) {
	p.mu.Lock()
	if n := len(p.idle); n > 0 {
		c := p.idle[n-1]
		p.idle = p.idle[:n-1]
		p.mu.Unlock()
		return c, nil
	}
	p.mu.Unlock()
	return net.DialTimeout("tcp", p.addr, timeout)
}

func (p *connPool) put(c net.Conn) {
	p.mu.Lock()
	if len(p.idle) < 8 {
		p.idle = append(p.idle, c)
		p.mu.Unlock()
		return
	}
	p.mu.Unlock()
	c.Close()
}

// closeAll drops every pooled and multiplexed connection (shutdown).
func (tr *transport) closeAll() {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	for _, p := range tr.pools {
		p.mu.Lock()
		for _, c := range p.idle {
			c.Close()
		}
		p.idle = nil
		p.mu.Unlock()
	}
	for _, mc := range tr.muxes {
		mc.close()
	}
}

// exchange runs one framed request/response round-trip on a pooled
// connection. Any error closes the connection — the protocol has no
// re-synchronization — and surfaces to the caller for fallback/failover.
func (tr *transport) exchange(addr string, typ byte, payload []byte, wantTyp byte) ([]byte, error) {
	p := tr.pool(addr)
	conn, err := p.get(tr.timeout)
	if err != nil {
		return nil, err
	}
	conn.SetDeadline(time.Now().Add(tr.timeout))
	if err := frame.Write(conn, typ, payload); err != nil {
		conn.Close()
		return nil, err
	}
	gotTyp, resp, err := frame.Read(conn)
	if err != nil {
		conn.Close()
		return nil, err
	}
	if gotTyp != wantTyp {
		conn.Close()
		return nil, fmt.Errorf("router: fleet frame type %d, want %d", gotTyp, wantTyp)
	}
	conn.SetDeadline(time.Time{})
	p.put(conn)
	return resp, nil
}

// ping probes one backend: framed when it has a fleet listener, HTTP
// (/readyz + /v1/config) otherwise. The returned status carries the drain
// flag and model generation either way.
func (tr *transport) ping(b *backend) (serve.FleetStatus, error) {
	if b.spec.FleetAddr != "" {
		resp, err := tr.exchange(b.spec.FleetAddr, serve.FleetPing, nil, serve.FleetPong)
		if err != nil {
			return serve.FleetStatus{}, err
		}
		var st serve.FleetStatus
		if err := json.Unmarshal(resp, &st); err != nil {
			return serve.FleetStatus{}, fmt.Errorf("router: decoding pong: %w", err)
		}
		return st, nil
	}
	return tr.pingHTTP(b)
}

func (tr *transport) pingHTTP(b *backend) (serve.FleetStatus, error) {
	var st serve.FleetStatus
	resp, err := tr.client.Get(b.spec.URL + "/readyz")
	if err != nil {
		return st, err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	st.Draining = resp.StatusCode == http.StatusServiceUnavailable
	if !st.Draining && resp.StatusCode != http.StatusOK {
		return st, fmt.Errorf("router: %s/readyz returned %d", b.spec.URL, resp.StatusCode)
	}
	cfgResp, err := tr.client.Get(b.spec.URL + "/v1/config")
	if err != nil {
		return st, err
	}
	defer cfgResp.Body.Close()
	if cfgResp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, cfgResp.Body)
		return st, fmt.Errorf("router: %s/v1/config returned %d", b.spec.URL, cfgResp.StatusCode)
	}
	var cfg struct {
		MaxBatch     int    `json:"max_batch"`
		ModelVersion uint64 `json:"model_version"`
		ModelPath    string `json:"model_path"`
	}
	if err := json.NewDecoder(cfgResp.Body).Decode(&cfg); err != nil {
		return st, err
	}
	st.ModelVersion = cfg.ModelVersion
	st.MaxBatch = cfg.MaxBatch
	st.ModelPath = cfg.ModelPath
	return st, nil
}

// infer forwards one serialized request body to a backend, framed first,
// HTTP on fallback. The bool reports whether the HTTP fallback was used
// after a framed failure (the metrics count those).
func (tr *transport) infer(b *backend, body []byte) (serve.FleetResponse, bool, error) {
	if b.spec.FleetAddr != "" {
		rtyp, resp, err := tr.mexchange(b.spec.FleetAddr, serve.FleetInfer, body)
		if err == nil && rtyp != serve.FleetResult {
			err = fmt.Errorf("router: fleet frame type %d, want %d", rtyp, serve.FleetResult)
		}
		if err == nil {
			var out serve.FleetResponse
			if jerr := json.Unmarshal(resp, &out); jerr != nil {
				return serve.FleetResponse{}, false, fmt.Errorf("router: decoding fleet result: %w", jerr)
			}
			return out, false, nil
		}
		// Framed path failed; one HTTP attempt before declaring the
		// backend unreachable.
		out, herr := tr.inferHTTP(b, body)
		if herr != nil {
			return serve.FleetResponse{}, false, err // original framed error is the informative one
		}
		return out, true, nil
	}
	out, err := tr.inferHTTP(b, body)
	return out, false, err
}

func (tr *transport) inferHTTP(b *backend, body []byte) (serve.FleetResponse, error) {
	resp, err := tr.client.Post(b.spec.URL+"/v1/infer", "application/json", bytes.NewReader(body))
	if err != nil {
		return serve.FleetResponse{}, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return serve.FleetResponse{}, err
	}
	out := serve.FleetResponse{Code: resp.StatusCode, Body: data}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		if v, err := strconv.Atoi(ra); err == nil {
			out.RetryAfter = v
		}
	}
	return out, nil
}

// reload swaps a backend to the checkpoint at path over the HTTP control
// plane (the canary registry's promote/rollback mechanism).
func (tr *transport) reload(b *backend, path string) error {
	body, _ := json.Marshal(struct {
		Path string `json:"path"`
	}{Path: path})
	resp, err := tr.client.Post(b.spec.URL+"/v1/reload", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("router: reload of %s to %q failed: %d %s", b.spec.URL, path, resp.StatusCode, bytes.TrimSpace(data))
	}
	return nil
}
