package router

import (
	"sort"
	"sync"

	"skipper/internal/core"
	"skipper/internal/stats"
)

// sloController tunes one class's early-exit confidence margin against its
// latency budget. The margin is the knob core.InferOptions.MinMargin exposes:
// a lower margin lets the spike-activity exit rule freeze predictions sooner
// (faster, slightly less certain), a higher margin demands more confidence
// (slower, more accurate). Instead of the server's fixed constant, the
// router watches each class's recent p99 and walks the margin inside
// [minMargin, maxMargin]:
//
//   - p99 over budget        → margin ·= 0.75 (exit sooner, spend the
//     accuracy headroom on latency)
//   - p99 under half budget  → margin ·= 1.15 (latency headroom to spare,
//     buy confidence back)
//
// Multiplicative steps every adjustEvery observations give a damped
// controller that converges instead of oscillating, and the rolling window
// (stats.Window) forgets old regimes — a reload spike stops biasing the
// margin a few hundred requests after it passes.
type sloController struct {
	mu       sync.Mutex
	budgetMS float64
	window   *stats.Window
	margin   float64
	sinceAdj int
}

const (
	sloWindow   = 256
	adjustEvery = 32
	minMargin   = 0.02
	maxMargin   = 0.5
)

func newSLOController(budgetMS float64) *sloController {
	return &sloController{
		budgetMS: budgetMS,
		window:   stats.NewWindow(sloWindow),
		margin:   core.DefaultExitMargin,
	}
}

// observe records one completed request's latency and periodically adjusts
// the margin.
func (s *sloController) observe(latencyMS float64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.window.Observe(latencyMS)
	s.sinceAdj++
	if s.sinceAdj < adjustEvery {
		return
	}
	s.sinceAdj = 0
	p99 := s.window.Percentile(99)
	switch {
	case p99 > s.budgetMS:
		s.margin *= 0.75
		if s.margin < minMargin {
			s.margin = minMargin
		}
	case p99 < 0.5*s.budgetMS:
		s.margin *= 1.15
		if s.margin > maxMargin {
			s.margin = maxMargin
		}
	}
}

// exitMargin returns the current margin to forward with a request.
func (s *sloController) exitMargin() float64 {
	if s == nil {
		return 0 // no controller: let the server default stand
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.margin
}

// p99 returns the recent window's 99th percentile latency in ms (metrics).
func (s *sloController) p99() float64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.window.Percentile(99)
}

// sortStrings is a tiny alias so admission.go doesn't import sort just for
// one call.
func sortStrings(xs []string) { sort.Strings(xs) }
