package router

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"skipper/internal/serve"
)

// fakeReplica is a controllable stand-in for one skipper-serve process: it
// implements the slice of the HTTP surface the router touches (/readyz,
// /v1/config, /v1/infer, /v1/reload) with injectable model paths, failure
// modes, and latency. Fault-path tests kill it by closing the httptest
// server — indistinguishable from a crashed process from the router's side.
type fakeReplica struct {
	srv *httptest.Server

	mu        sync.Mutex
	modelPath string
	version   uint64
	// failOnPath makes /v1/infer return 500 while the replica serves this
	// checkpoint path — the "bad canary generation" injection.
	failOnPath string
	reloads    []string
	// probeTimes records when each /readyz probe arrived (heartbeat
	// scheduling tests).
	probeTimes []time.Time

	requests atomic.Int64
	// down makes /readyz return 500 — a reachable process that is not
	// healthy, the flapping-replica injection.
	down atomic.Bool
}

func newFakeReplica(t *testing.T, modelPath string) *fakeReplica {
	t.Helper()
	f := &fakeReplica{modelPath: modelPath, version: 1}
	mux := http.NewServeMux()
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		f.mu.Lock()
		f.probeTimes = append(f.probeTimes, time.Now())
		f.mu.Unlock()
		if f.down.Load() {
			w.WriteHeader(http.StatusInternalServerError)
			return
		}
		w.WriteHeader(http.StatusOK)
	})
	mux.HandleFunc("/v1/config", func(w http.ResponseWriter, r *http.Request) {
		f.mu.Lock()
		defer f.mu.Unlock()
		json.NewEncoder(w).Encode(map[string]any{
			"max_batch": 8, "model_version": f.version, "model_path": f.modelPath,
			"input_len": 4, "classes": 4, "t": 6,
		})
	})
	mux.HandleFunc("/v1/infer", func(w http.ResponseWriter, r *http.Request) {
		f.requests.Add(1)
		f.mu.Lock()
		bad := f.failOnPath != "" && f.modelPath == f.failOnPath
		version := f.version
		f.mu.Unlock()
		if bad {
			w.WriteHeader(http.StatusInternalServerError)
			json.NewEncoder(w).Encode(map[string]string{"error": "injected failure"})
			return
		}
		json.NewEncoder(w).Encode(serve.InferResponse{Pred: 1, ModelVersion: version, T: 6, StepsRun: 3, BatchSize: 1})
	})
	mux.HandleFunc("/v1/reload", func(w http.ResponseWriter, r *http.Request) {
		var body struct {
			Path string `json:"path"`
		}
		json.NewDecoder(r.Body).Decode(&body)
		f.mu.Lock()
		f.modelPath = body.Path
		f.version++
		f.reloads = append(f.reloads, body.Path)
		version := f.version
		f.mu.Unlock()
		json.NewEncoder(w).Encode(map[string]any{"version": version, "path": body.Path})
	})
	f.srv = httptest.NewServer(mux)
	t.Cleanup(f.srv.Close)
	return f
}

func (f *fakeReplica) url() string { return f.srv.URL }

func (f *fakeReplica) setFailOnPath(p string) {
	f.mu.Lock()
	f.failOnPath = p
	f.mu.Unlock()
}

func (f *fakeReplica) reloadHistory() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]string(nil), f.reloads...)
}

func (f *fakeReplica) path() string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.modelPath
}

func (f *fakeReplica) probes() []time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]time.Time(nil), f.probeTimes...)
}

func newTestRouter(t *testing.T, cfg Config) (*Router, *httptest.Server) {
	t.Helper()
	rt, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	hs := httptest.NewServer(rt.Handler())
	t.Cleanup(func() {
		hs.Close()
		rt.Close()
	})
	return rt, hs
}

// routeOnce posts one request through the router and returns (code, backend
// id from the X-Skipper-Backend header).
func routeOnce(t *testing.T, client *http.Client, base, session, class string) (int, string) {
	t.Helper()
	code, backend, err := routeQuiet(client, base, session, class)
	if err != nil {
		t.Fatalf("POST /v1/infer: %v", err)
	}
	return code, backend
}

// routeQuiet is routeOnce without the test dependency, safe from soak
// goroutines (t.Fatalf is only legal on the test goroutine).
func routeQuiet(client *http.Client, base, session, class string) (int, string, error) {
	body, _ := json.Marshal(map[string]any{
		"input":   []float32{0.1, 0.2, 0.3, 0.4},
		"session": session,
		"class":   class,
	})
	resp, err := client.Post(base+"/v1/infer", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, "", err
	}
	defer resp.Body.Close()
	var sink json.RawMessage
	json.NewDecoder(resp.Body).Decode(&sink)
	return resp.StatusCode, resp.Header.Get("X-Skipper-Backend"), nil
}

// TestRouterKillReplicaMidSoak is the headline fault test: three replicas, a
// steady soak of session-keyed traffic, one replica killed mid-soak. The
// properties pinned:
//
//  1. no client-visible failure — sessions on the dead replica fail over to
//     their ring successor inside the same request;
//  2. sessions that were NOT on the dead replica keep their backend (only
//     vacated arcs remap);
//  3. the ring converges (dead replica out) within the heartbeat window.
func TestRouterKillReplicaMidSoak(t *testing.T) {
	replicas := []*fakeReplica{
		newFakeReplica(t, "/ckpt/a"),
		newFakeReplica(t, "/ckpt/b"),
		newFakeReplica(t, "/ckpt/c"),
	}
	specs := make([]BackendSpec, len(replicas))
	for i, f := range replicas {
		specs[i] = BackendSpec{URL: f.url()}
	}
	const hb = 25 * time.Millisecond
	rt, hs := newTestRouter(t, Config{
		Backends:          specs,
		HeartbeatInterval: hb,
		DeadAfter:         2,
	})
	client := hs.Client()

	// Map every session to its steady-state backend first.
	const sessions = 48
	before := map[string]string{}
	for i := 0; i < sessions; i++ {
		s := fmt.Sprintf("soak-%d", i)
		code, backend := routeOnce(t, client, hs.URL, s, "")
		if code != http.StatusOK {
			t.Fatalf("warmup session %s: code %d", s, code)
		}
		before[s] = backend
	}

	// Soak: every session keeps issuing requests while replica 1 dies.
	victim := replicas[1]
	victimID := victim.url()
	var failures atomic.Int64
	stopSoak := make(chan struct{})
	var soakWG sync.WaitGroup
	for i := 0; i < 8; i++ {
		soakWG.Add(1)
		go func(worker int) {
			defer soakWG.Done()
			for n := 0; ; n++ {
				select {
				case <-stopSoak:
					return
				default:
				}
				s := fmt.Sprintf("soak-%d", (worker*17+n)%sessions)
				code, _, err := routeQuiet(client, hs.URL, s, "")
				if err != nil || code != http.StatusOK {
					failures.Add(1)
				}
			}
		}(i)
	}

	time.Sleep(4 * hb)
	victim.srv.Close() // kill -9, as far as the router can tell

	// The ring must drop the victim within the heartbeat window:
	// DeadAfter·interval of missed beats plus one reconcile pass (transport
	// failures on the data path fast-track it, but the bound must hold even
	// with no traffic).
	deadline := time.Now().Add(time.Duration(rt.cfg.DeadAfter+3) * hb * 2)
	for {
		rt.mu.RLock()
		gone := !rt.ring.Has(victimID)
		rt.mu.RUnlock()
		if gone {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("ring still contains the killed replica after the heartbeat window")
		}
		time.Sleep(hb / 4)
	}

	time.Sleep(4 * hb)
	close(stopSoak)
	soakWG.Wait()

	if n := failures.Load(); n != 0 {
		t.Fatalf("%d client-visible failures during the kill; failover should absorb all of them", n)
	}

	// Sessions that were on survivors keep their backend; sessions that were
	// on the victim land on a consistent survivor.
	for s, was := range before {
		code, now := routeOnce(t, client, hs.URL, s, "")
		if code != http.StatusOK {
			t.Fatalf("session %s after kill: code %d", s, code)
		}
		if was != victimID && now != was {
			t.Fatalf("session %s moved %s -> %s although its replica survived", s, was, now)
		}
		if was == victimID && now == victimID {
			t.Fatalf("session %s still routed to the dead replica", s)
		}
	}
	if rt.Metrics().RequestCount(http.StatusOK) == 0 {
		t.Fatal("metrics recorded no 200s")
	}
}

// TestRouterCanaryRollbackOnElevated5xx pins the registry's safety property:
// a canary generation that returns elevated 5xx is rolled back — the canary
// backend is restored to its previous checkpoint — and is never promoted to
// the stable replicas.
func TestRouterCanaryRollbackOnElevated5xx(t *testing.T) {
	replicas := []*fakeReplica{
		newFakeReplica(t, "/ckpt/base"),
		newFakeReplica(t, "/ckpt/base"),
		newFakeReplica(t, "/ckpt/base"),
	}
	specs := make([]BackendSpec, len(replicas))
	for i, f := range replicas {
		specs[i] = BackendSpec{URL: f.url()}
		f.setFailOnPath("/ckpt/bad") // serving the bad generation → 500s
	}
	const hb = 20 * time.Millisecond
	rt, hs := newTestRouter(t, Config{
		Backends:          specs,
		HeartbeatInterval: hb,
		CanaryMinRequests: 1 << 30, // promotion unreachable; only rollback can end the run
	})
	client := hs.Client()

	if err := rt.StartCanary("/ckpt/bad", 0.5); err != nil {
		t.Fatalf("StartCanary: %v", err)
	}
	canaryID, _ := rt.registry.active()
	if canaryID == "" {
		t.Fatal("no active canary after StartCanary")
	}

	// Drive traffic across many sessions until the registry rolls back.
	deadline := time.Now().Add(5 * time.Second)
	for i := 0; ; i++ {
		routeOnce(t, client, hs.URL, fmt.Sprintf("cs-%d", i%256), "")
		if _, rollbacks := rt.registry.counts(); rollbacks == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("canary not rolled back; status %+v", rt.registry.status())
		}
	}

	promotions, rollbacks := rt.registry.counts()
	if promotions != 0 || rollbacks != 1 {
		t.Fatalf("promotions=%d rollbacks=%d, want 0/1", promotions, rollbacks)
	}
	// The canary backend was restored; no stable replica ever saw the bad path.
	for i, f := range replicas {
		if f.url() == canaryID {
			if got := f.path(); got != "/ckpt/base" {
				t.Fatalf("canary backend serves %q after rollback, want /ckpt/base", got)
			}
			continue
		}
		for _, p := range f.reloadHistory() {
			if p == "/ckpt/bad" {
				t.Fatalf("stable replica %d was reloaded to the bad canary path", i)
			}
		}
	}
	// The canary backend rejoins the ring and the fleet settles: everything 200.
	waitRingSize(t, rt, 3, 2*time.Second)
	for i := 0; i < 32; i++ {
		if code, _ := routeOnce(t, client, hs.URL, fmt.Sprintf("cs-%d", i), ""); code != http.StatusOK {
			t.Fatalf("post-rollback request %d: code %d", i, code)
		}
	}
}

// TestRouterCanaryPromote drives a healthy canary to promotion: every stable
// replica reloads to the canary checkpoint, the canary backend rejoins the
// ring, and no request fails across the whole swap.
func TestRouterCanaryPromote(t *testing.T) {
	replicas := []*fakeReplica{
		newFakeReplica(t, "/ckpt/base"),
		newFakeReplica(t, "/ckpt/base"),
		newFakeReplica(t, "/ckpt/base"),
	}
	specs := make([]BackendSpec, len(replicas))
	for i, f := range replicas {
		specs[i] = BackendSpec{URL: f.url()}
	}
	const hb = 20 * time.Millisecond
	rt, hs := newTestRouter(t, Config{
		Backends:          specs,
		HeartbeatInterval: hb,
		CanaryMinRequests: 24,
	})
	client := hs.Client()

	if err := rt.StartCanary("/ckpt/v2", 0.5); err != nil {
		t.Fatalf("StartCanary: %v", err)
	}
	var failed atomic.Int64
	deadline := time.Now().Add(5 * time.Second)
	for i := 0; ; i++ {
		code, _ := routeOnce(t, client, hs.URL, fmt.Sprintf("ps-%d", i%128), "")
		if code != http.StatusOK {
			failed.Add(1)
		}
		if promotions, _ := rt.registry.counts(); promotions == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("canary not promoted; status %+v", rt.registry.status())
		}
	}
	if n := failed.Load(); n != 0 {
		t.Fatalf("%d failed requests across the canary swap, want 0", n)
	}
	promotions, rollbacks := rt.registry.counts()
	if promotions != 1 || rollbacks != 0 {
		t.Fatalf("promotions=%d rollbacks=%d, want 1/0", promotions, rollbacks)
	}
	for i, f := range replicas {
		if got := f.path(); got != "/ckpt/v2" {
			t.Fatalf("replica %d serves %q after promote, want /ckpt/v2", i, got)
		}
	}
	waitRingSize(t, rt, 3, 2*time.Second)
}

// TestRouterShedsByClass pins the tier ordering end to end: a rate-capped
// class sheds with 429 + Retry-After + a labeled shed counter while an
// uncapped class keeps flowing.
func TestRouterShedsByClass(t *testing.T) {
	f := newFakeReplica(t, "/ckpt/base")
	rt, hs := newTestRouter(t, Config{
		Backends:          []BackendSpec{{URL: f.url()}},
		HeartbeatInterval: 50 * time.Millisecond,
		Classes: []ClassConfig{
			{Name: "interactive", Tier: 0, BudgetMS: 250},
			{Name: "bulk", Tier: 2, RatePerSec: 0.001, Burst: 1, FullHorizon: true},
		},
		DefaultClass: "interactive",
	})
	client := hs.Client()

	if code, _ := routeOnce(t, client, hs.URL, "s1", "bulk"); code != http.StatusOK {
		t.Fatalf("first bulk request: code %d, want 200", code)
	}
	// Bucket empty (burst 1, refill ~0): the next bulk request sheds.
	body, _ := json.Marshal(map[string]any{"input": []float32{0.1}, "session": "s1", "class": "bulk"})
	resp, err := client.Post(hs.URL+"/v1/infer", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second bulk request: code %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("shed 429 carries no Retry-After header")
	}
	if got := rt.Metrics().ShedCount("bulk", shedReasonRate); got != 1 {
		t.Fatalf("ShedCount(bulk, rate_limit) = %d, want 1", got)
	}
	// Interactive traffic is unaffected.
	for i := 0; i < 4; i++ {
		if code, _ := routeOnce(t, client, hs.URL, "s2", "interactive"); code != http.StatusOK {
			t.Fatalf("interactive request %d: code %d", i, code)
		}
	}
	if got := rt.Metrics().ShedCount("interactive", shedReasonRate); got != 0 {
		t.Fatalf("interactive was rate-shed %d times", got)
	}
}

func waitRingSize(t *testing.T, rt *Router, want int, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		rt.mu.RLock()
		n := rt.ring.Len()
		rt.mu.RUnlock()
		if n == want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("ring size %d, want %d", n, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// A non-zero JitterSeed makes the heartbeat-jitter schedule reproducible:
// two routers configured identically draw identical probe intervals, and a
// different seed draws a different schedule. (With the old wall-clock-only
// seeding this was untestable.)
func TestJitterSeedDeterministic(t *testing.T) {
	f := newFakeReplica(t, "/ckpt/a")
	sequence := func(seed int64) []time.Duration {
		rt, _ := newTestRouter(t, Config{
			Backends:          []BackendSpec{{URL: f.url()}},
			HeartbeatInterval: time.Hour, // keep the background loop quiet
			HeartbeatJitter:   0.3,
			JitterSeed:        seed,
		})
		out := make([]time.Duration, 16)
		rt.mu.Lock()
		for i := range out {
			out[i] = rt.jitteredIntervalLocked()
		}
		rt.mu.Unlock()
		return out
	}
	a, b := sequence(42), sequence(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at draw %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := sequence(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced an identical jitter schedule")
	}
}
