package router

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"strconv"
	"sync"
	"time"

	"skipper/internal/serve"
	"skipper/internal/trace"
)

// Router is the serving fleet's front tier: it consistent-hashes session keys
// onto a health-checked pool of skipper-serve replicas, sheds load in tiers
// before the replicas saturate, tunes the early-exit margin per request class
// against a latency budget, and runs the canary registry that rolls model
// generations through the fleet one replica at a time.
//
// Placement is a consistent hash of the session key over virtual nodes, so a
// dead replica vacates only its own arcs: every other session keeps its replica,
// which is what makes per-replica caches (and, later, stateful streaming
// membrane carry-over) worth having. Health comes from a heartbeat loop —
// FleetPing over the framed transport, /readyz over HTTP — and a replica that
// misses DeadAfter beats in a row leaves the ring until it answers again.
type Router struct {
	cfg       Config
	transport *transport
	admission *admission
	registry  *registry
	metrics   *Metrics
	tracer    *trace.Tracer
	susp      *suspicion

	mu       sync.RWMutex // guards ring membership + backend state transitions
	ring     *Ring
	backends map[string]*backend
	order    []string   // spec order, for stable /v1/fleet listings
	rng      *rand.Rand // heartbeat/readmit jitter; guarded by mu

	peers   []*peerLink // outbound links, fixed at construction
	inbound peerConns   // accepted peer-channel connections

	stop chan struct{}
	wg   sync.WaitGroup
}

// Config configures a Router. Zero values get serving-sane defaults.
type Config struct {
	// Backends is the replica pool. At least one is required.
	Backends []BackendSpec
	// VNodes is the virtual-node count per backend (default 64).
	VNodes int
	// HeartbeatInterval is the health-probe period (default 500ms).
	HeartbeatInterval time.Duration
	// DeadAfter is how many consecutive missed heartbeats kill a backend
	// (default 3).
	DeadAfter int
	// RequestTimeout bounds one backend exchange (default 30s).
	RequestTimeout time.Duration
	// Classes is the admission configuration (default DefaultClasses).
	Classes []ClassConfig
	// DefaultClass is the class for unlabeled requests (default "standard",
	// falling back to the lexically first configured class).
	DefaultClass string
	// CanaryMinRequests is the canary cohort size before promotion is
	// considered (default 50).
	CanaryMinRequests int
	// FailoverAttempts is how many ring successors a request tries after its
	// primary fails (default 2).
	FailoverAttempts int
	// Tracer, when non-nil, records route / backend_rtt / failover spans on
	// trace.TrackRouter.
	Tracer *trace.Tracer
	// Client overrides the HTTP client for the fallback/control plane.
	Client *http.Client

	// ---- replicated router tier ----

	// PeerListener, when non-nil, accepts the peer channel: router↔router
	// state sync and replica drain announcements. The Router serves it until
	// Close, which also closes it.
	PeerListener net.Listener
	// PeerID names this router to its peers (default: PeerListener's
	// address). Ties in the replicated-state version race break toward the
	// lexically lower id, so ids must be unique across the tier.
	PeerID string
	// Peers lists the other routers' peer-listener addresses. The quorum
	// denominator is 1+len(Peers) whether or not the peers are reachable.
	Peers []string
	// SyncInterval is the gossip period (default: HeartbeatInterval).
	SyncInterval time.Duration
	// SuspicionStale is how stale a peer's last sync may be before its
	// suspicion votes stop counting toward quorum — a dead router cannot
	// keep a backend dead (default 4×SyncInterval).
	SuspicionStale time.Duration

	// ---- heartbeat scheduling / flap damping ----

	// HeartbeatJitter spreads each backend's probe interval by ±this
	// fraction so N routers do not probe every replica in lockstep
	// (default 0.2; negative disables).
	HeartbeatJitter float64
	// ReadmitBackoffMax caps the dead→ring re-admission hold-down of a
	// flapping backend (default 10s). The hold-down starts at one heartbeat
	// interval and doubles per flap.
	ReadmitBackoffMax time.Duration
	// FlapWindow is how soon after a previous death the next one counts as
	// a flap (default 2×ReadmitBackoffMax).
	FlapWindow time.Duration
	// JitterSeed seeds the heartbeat/readmit jitter RNG. 0 (the default)
	// seeds from the wall clock as before; tests set it non-zero to make
	// probe scheduling deterministic.
	JitterSeed int64
}

func (c Config) withDefaults() Config {
	if c.HeartbeatInterval <= 0 {
		c.HeartbeatInterval = 500 * time.Millisecond
	}
	if c.DeadAfter <= 0 {
		c.DeadAfter = 3
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.DefaultClass == "" {
		c.DefaultClass = "standard"
	}
	if c.FailoverAttempts <= 0 {
		c.FailoverAttempts = 2
	}
	if c.SyncInterval <= 0 {
		c.SyncInterval = c.HeartbeatInterval
	}
	if c.SuspicionStale <= 0 {
		c.SuspicionStale = 4 * c.SyncInterval
	}
	if c.HeartbeatJitter == 0 {
		c.HeartbeatJitter = 0.2
	} else if c.HeartbeatJitter < 0 {
		c.HeartbeatJitter = 0
	}
	if c.ReadmitBackoffMax <= 0 {
		c.ReadmitBackoffMax = 10 * time.Second
	}
	if c.FlapWindow <= 0 {
		c.FlapWindow = 2 * c.ReadmitBackoffMax
	}
	if c.PeerID == "" && c.PeerListener != nil {
		c.PeerID = c.PeerListener.Addr().String()
	}
	return c
}

// New builds the router, runs one synchronous heartbeat pass so the ring is
// populated before the first request, and starts the heartbeat loop.
func New(cfg Config) (*Router, error) {
	if len(cfg.Backends) == 0 {
		return nil, fmt.Errorf("router: at least one backend is required")
	}
	cfg = cfg.withDefaults()
	if len(cfg.Peers) > 0 && cfg.PeerListener == nil {
		return nil, fmt.Errorf("router: Peers requires a PeerListener (the peers must be able to sync back)")
	}
	rt := &Router{
		cfg:       cfg,
		transport: newTransport(cfg.Client, cfg.RequestTimeout),
		admission: newAdmission(cfg.Classes, cfg.DefaultClass, nil),
		registry:  newRegistry(cfg.CanaryMinRequests, cfg.PeerID),
		metrics:   newMetrics(),
		tracer:    cfg.Tracer,
		susp:      newSuspicion(1+len(cfg.Peers), cfg.SuspicionStale, nil),
		ring:      NewRing(cfg.VNodes),
		backends:  map[string]*backend{},
		rng:       rand.New(rand.NewSource(jitterSeed(cfg.JitterSeed))),
		stop:      make(chan struct{}),
	}
	rt.admission.selfID = cfg.PeerID
	for _, spec := range cfg.Backends {
		if err := spec.validate(); err != nil {
			return nil, err
		}
		if _, dup := rt.backends[spec.URL]; dup {
			return nil, fmt.Errorf("router: duplicate backend %q", spec.URL)
		}
		rt.backends[spec.URL] = newBackend(spec)
		rt.order = append(rt.order, spec.URL)
	}
	for _, addr := range cfg.Peers {
		rt.peers = append(rt.peers, newPeerLink(addr))
	}
	rt.metrics.backendStates = rt.backendStateCounts
	rt.metrics.ringSize = func() int {
		rt.mu.RLock()
		defer rt.mu.RUnlock()
		return rt.ring.Len()
	}
	rt.metrics.canary = rt.registry.status
	rt.metrics.classGauges = rt.classGauges
	rt.heartbeatPass(time.Now(), true)
	rt.wg.Add(1)
	go rt.heartbeatLoop()
	if cfg.PeerListener != nil {
		rt.wg.Add(1)
		go rt.peerAcceptLoop()
	}
	for _, link := range rt.peers {
		rt.wg.Add(1)
		go rt.gossipLoop(link)
	}
	return rt, nil
}

// Close stops the heartbeat and gossip loops, closes the peer channel, and
// drops pooled backend connections.
func (rt *Router) Close() {
	close(rt.stop)
	if rt.cfg.PeerListener != nil {
		rt.cfg.PeerListener.Close()
	}
	rt.inbound.closeAll()
	rt.wg.Wait()
	rt.transport.closeAll()
}

// Metrics exposes the router's registry (tests, embedding).
func (rt *Router) Metrics() *Metrics { return rt.metrics }

// ---- heartbeats ----

// heartbeatLoop runs a fine-grained scheduler: it ticks at a fraction of the
// heartbeat interval and probes whichever backends are due. Each backend
// carries its own next-probe time — staggered at startup and jittered per
// probe — so a tier of N routers never pounds every replica in lockstep.
func (rt *Router) heartbeatLoop() {
	defer rt.wg.Done()
	fine := rt.cfg.HeartbeatInterval / 8
	if fine < time.Millisecond {
		fine = time.Millisecond
	}
	tick := time.NewTicker(fine)
	defer tick.Stop()
	lastCanary := time.Now()
	for {
		select {
		case <-rt.stop:
			return
		case <-tick.C:
		}
		now := time.Now()
		rt.heartbeatPass(now, false)
		if now.Sub(lastCanary) >= rt.cfg.HeartbeatInterval {
			lastCanary = now
			rt.canaryTick()
		}
	}
}

// heartbeatPass probes every due backend (all of them when all is set — the
// synchronous warm-up in New) and reconciles ring membership. Only the
// vacated arcs of a removed backend remap; survivors keep every session they
// had.
func (rt *Router) heartbeatPass(now time.Time, all bool) {
	rt.mu.Lock()
	var bs []*backend
	n := len(rt.order)
	for i, id := range rt.order {
		b := rt.backends[id]
		if !all && now.Before(b.nextProbe) {
			continue
		}
		if all {
			// Initial stagger: backend i's second probe lands at (i+1)/n of
			// the interval, so probe phases start decorrelated before jitter
			// even begins to accumulate.
			b.nextProbe = now.Add(rt.cfg.HeartbeatInterval * time.Duration(i+1) / time.Duration(n))
		} else {
			b.nextProbe = now.Add(rt.jitteredIntervalLocked())
		}
		bs = append(bs, b)
	}
	rt.mu.Unlock()
	if len(bs) == 0 {
		return
	}

	results := make([]probeResult, len(bs))
	var wg sync.WaitGroup
	for i, b := range bs {
		wg.Add(1)
		go func(i int, b *backend) {
			defer wg.Done()
			start := time.Now()
			st, err := rt.transport.ping(b)
			results[i] = probeResult{b: b, st: st, rtt: time.Since(start), err: err}
		}(i, b)
	}
	wg.Wait()

	canaryID, _ := rt.registry.active()
	rt.mu.Lock()
	defer rt.mu.Unlock()
	for _, p := range results {
		rt.reconcileProbeLocked(p, canaryID, now)
	}
}

// probeResult is one backend's health-probe outcome.
type probeResult struct {
	b   *backend
	st  serve.FleetStatus
	rtt time.Duration
	err error
}

// reconcileProbeLocked folds one probe result into the backend's state and
// ring membership. Callers hold rt.mu.
func (rt *Router) reconcileProbeLocked(p probeResult, canaryID string, now time.Time) {
	b := p.b
	if p.err != nil {
		b.misses++
		if b.misses >= rt.cfg.DeadAfter {
			rt.suspectLocked(b, now)
		}
		return
	}
	b.misses = 0
	b.observeRTT(p.rtt.Microseconds())
	b.version.Store(p.st.ModelVersion)
	b.modelPath.Store(p.st.ModelPath)
	if cap := int64(p.st.QueueCap + p.st.Workers*p.st.MaxBatch); cap > 0 {
		b.capacity.Store(cap)
	}
	// The probe answered: withdraw the local suspicion vote, and tell the
	// peers promptly so an outvoted healthy backend is restored fast.
	if rt.susp.clear(b.id) {
		rt.kickSync()
	}
	if b.drainAnnounced.Load() || p.st.Draining {
		// drainAnnounced is the announced-shutdown latch: even a pong still
		// reporting draining=false (announce raced the server's drain flag)
		// keeps the backend out of the ring.
		rt.setDrainingLocked(b)
		return
	}
	if rt.susp.confirmed(b.id) {
		// Outvoted: a majority of routers still suspects this backend. Our
		// cleared vote is gossiping; the quorum re-admits it when enough
		// routers' own probes succeed.
		return
	}
	if b.State() == StateDead && now.Before(b.readmitAt) {
		return // flap damping: hold a recently dead backend out of the ring
	}
	b.setState(StateAlive)
	// The canary backend stays out of the main ring; it receives only its
	// hash fraction.
	if b.id != canaryID && !rt.ring.Has(b.id) {
		rt.ring.Add(b.id)
		rt.metrics.observeRemap()
	}
}

// suspectLocked casts the local suspicion vote against a backend and kills it
// if the cluster has quorum. With a single router the majority is 1, so local
// suspicion is still immediate death — the pre-tier behavior. Callers hold
// rt.mu.
func (rt *Router) suspectLocked(b *backend, now time.Time) {
	if rt.susp.suspect(b.id) {
		rt.kickSync()
		rt.tracer.Event(trace.TrackRouter, "backend_suspected")
	}
	if b.State() != StateDead && rt.susp.confirmed(b.id) {
		rt.killBackendLocked(b, now)
	}
}

// killBackendLocked declares a backend dead: out of the ring, flap accounting
// updated, the drain latch cleared so a restarted process can rejoin. An
// announced/draining shutdown is planned — it skips the flap hold-down so the
// restarted replica re-admits on its first healthy probe. Callers hold rt.mu.
func (rt *Router) killBackendLocked(b *backend, now time.Time) {
	if b.State() == StateDead {
		return
	}
	planned := b.State() == StateDraining || b.drainAnnounced.Load()
	b.setState(StateDead)
	b.misses = rt.cfg.DeadAfter
	b.drainAnnounced.Store(false)
	rt.metrics.observeDeath()
	if planned {
		b.readmitAt = now
	} else {
		if !b.lastDeath.IsZero() && now.Sub(b.lastDeath) <= rt.cfg.FlapWindow {
			b.flaps++
		} else {
			b.flaps = 1
		}
		b.lastDeath = now
		// Exponential hold-down: interval, 2·interval, 4·interval, ...,
		// capped, with positive jitter so a fleet of routers does not
		// re-admit a flapper in lockstep either.
		hold := rt.cfg.HeartbeatInterval
		for i := 1; i < b.flaps && hold < rt.cfg.ReadmitBackoffMax; i++ {
			hold *= 2
		}
		if hold > rt.cfg.ReadmitBackoffMax {
			hold = rt.cfg.ReadmitBackoffMax
		}
		if j := rt.cfg.HeartbeatJitter; j > 0 {
			hold = time.Duration(float64(hold) * (1 + j*rt.rng.Float64()))
		}
		b.readmitAt = now.Add(hold)
	}
	if rt.ring.Has(b.id) {
		rt.ring.Remove(b.id)
		rt.metrics.observeRemap()
		rt.tracer.Event(trace.TrackRouter, "backend_dead")
	}
}

// setDrainingLocked moves a backend to the draining state, vacates its
// arcs, and — on the transition, for fleet-capable backends — starts pulling
// its streaming sessions to their ring successors. Callers hold rt.mu.
func (rt *Router) setDrainingLocked(b *backend) {
	first := b.State() != StateDraining
	if first {
		b.setState(StateDraining)
		b.misses = 0
	}
	if rt.ring.Has(b.id) {
		rt.ring.Remove(b.id)
		rt.metrics.observeRemap()
		rt.tracer.Event(trace.TrackRouter, "backend_draining")
	}
	if first && b.spec.FleetAddr != "" {
		rt.wg.Add(1)
		go rt.migrateSessions(b)
	}
}

// jitterSeed resolves the configured seed: explicit for reproducible probe
// schedules, wall clock otherwise so independent routers decorrelate.
func jitterSeed(cfg int64) int64 {
	if cfg != 0 {
		return cfg
	}
	return time.Now().UnixNano()
}

// jitteredIntervalLocked returns the heartbeat interval spread by the
// configured jitter fraction. Callers hold rt.mu (it guards rng).
func (rt *Router) jitteredIntervalLocked() time.Duration {
	iv := rt.cfg.HeartbeatInterval
	j := rt.cfg.HeartbeatJitter
	if j <= 0 {
		return iv
	}
	return time.Duration(float64(iv) * (1 + j*(2*rt.rng.Float64()-1)))
}

func (rt *Router) backendStateCounts() map[string]int {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	out := map[string]int{}
	for _, b := range rt.backends {
		out[b.State().String()]++
	}
	return out
}

func (rt *Router) classGauges() []classGauge {
	names := rt.admission.classNames()
	out := make([]classGauge, 0, len(names))
	for _, name := range names {
		cs := rt.admission.resolve(name)
		out = append(out, classGauge{name: name, margin: cs.slo.exitMargin(), p99MS: cs.slo.p99()})
	}
	return out
}

// loadFactor is fleet in-flight over fleet capacity, counting ring members
// and the canary (everything that can take traffic).
func (rt *Router) loadFactor() float64 {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	var inflight, capacity int64
	for _, b := range rt.backends {
		if b.State() != StateAlive {
			continue
		}
		inflight += b.inflight.Load()
		capacity += b.capacityOrDefault()
	}
	if capacity == 0 {
		return 1
	}
	return float64(inflight) / float64(capacity)
}

// ---- canary lifecycle ----

// StartCanary reloads one alive replica to the checkpoint at path, takes it
// out of the main ring, and steers fraction of sessions onto it. Fails if a
// canary is already running, no replica is eligible, or the reload is
// rejected (the replica then rejoins the ring unchanged).
func (rt *Router) StartCanary(path string, fraction float64) error {
	if path == "" {
		return fmt.Errorf("router: canary path is required")
	}
	if fraction <= 0 || fraction > 1 {
		return fmt.Errorf("router: canary fraction %v outside (0, 1]", fraction)
	}
	if id, _ := rt.registry.active(); id != "" {
		return fmt.Errorf("router: a canary is already running on %s", id)
	}
	rt.mu.Lock()
	var pick *backend
	for _, id := range rt.order {
		b := rt.backends[id]
		if b.State() == StateAlive && rt.ring.Has(b.id) {
			pick = b
			break
		}
	}
	if pick == nil {
		rt.mu.Unlock()
		return fmt.Errorf("router: no alive backend to canary on")
	}
	prev := pick.modelPath.Load().(string)
	if prev == "" {
		rt.mu.Unlock()
		return fmt.Errorf("router: backend %s serves a fresh-init model with no checkpoint to roll back to", pick.id)
	}
	rt.ring.Remove(pick.id)
	rt.metrics.observeRemap()
	rt.mu.Unlock()

	if err := rt.transport.reload(pick, path); err != nil {
		rt.mu.Lock()
		if pick.State() == StateAlive && !rt.ring.Has(pick.id) {
			rt.ring.Add(pick.id)
			rt.metrics.observeRemap()
		}
		rt.mu.Unlock()
		return err
	}
	rt.registry.start(path, fraction, pick.id, prev)
	rt.tracer.Event(trace.TrackRouter, "canary_started")
	return nil
}

// canaryTick applies the registry's pending decision, if any.
func (rt *Router) canaryTick() {
	decision, reason := rt.registry.evaluate()
	switch decision {
	case "promote":
		rt.Promote(reason)
	case "rollback":
		rt.Rollback(reason)
	}
}

// Promote rolls the canary checkpoint out to every stable replica and
// returns the canary backend to the ring. A replica whose reload fails keeps
// the fleet in the canary state — the event is noted and the next tick
// retries, so a promote is all-or-nothing per pass.
func (rt *Router) Promote(reason string) error {
	run := rt.registry.snapshotRun()
	if run == nil {
		return fmt.Errorf("router: no canary to promote")
	}
	rt.mu.RLock()
	var stable []*backend
	for _, id := range rt.order {
		b := rt.backends[id]
		if b.id != run.BackendID && b.State() == StateAlive {
			stable = append(stable, b)
		}
	}
	rt.mu.RUnlock()
	for _, b := range stable {
		if b.modelPath.Load().(string) == run.Path {
			continue // already on the canary generation (retry pass)
		}
		if err := rt.transport.reload(b, run.Path); err != nil {
			rt.registry.note("promote_failed", run.Path, err.Error())
			return err
		}
		b.modelPath.Store(run.Path)
	}
	rt.mu.Lock()
	if cb := rt.backends[run.BackendID]; cb != nil && cb.State() == StateAlive && !rt.ring.Has(run.BackendID) {
		rt.ring.Add(run.BackendID)
		rt.metrics.observeRemap()
	}
	rt.mu.Unlock()
	rt.registry.finish("promoted", reason)
	rt.tracer.Event(trace.TrackRouter, "canary_promoted")
	return nil
}

// Rollback restores the canary backend to its previous checkpoint and
// returns it to the ring. Even if the restore reload fails (the backend
// keeps serving the canary generation), the run ends: the heartbeat keeps the
// backend in the ring and its generation is visible in /v1/fleet.
func (rt *Router) Rollback(reason string) error {
	run := rt.registry.snapshotRun()
	if run == nil {
		return fmt.Errorf("router: no canary to roll back")
	}
	var reloadErr error
	rt.mu.RLock()
	cb := rt.backends[run.BackendID]
	rt.mu.RUnlock()
	if cb != nil {
		reloadErr = rt.transport.reload(cb, run.PrevPath)
		rt.mu.Lock()
		if cb.State() == StateAlive && !rt.ring.Has(run.BackendID) {
			rt.ring.Add(run.BackendID)
			rt.metrics.observeRemap()
		}
		rt.mu.Unlock()
	}
	if reloadErr != nil {
		rt.registry.finish("rolled_back", reason+" (restore reload failed: "+reloadErr.Error()+")")
	} else {
		rt.registry.finish("rolled_back", reason)
	}
	rt.tracer.Event(trace.TrackRouter, "canary_rolled_back")
	return reloadErr
}

// ---- request path ----

// wireRequest is what clients send the router: the serve request plus the
// routing envelope. Unknown fields pass through to the backend untouched.
type wireRequest struct {
	serve.InferRequest
	Session string `json:"session,omitempty"`
	Class   string `json:"class,omitempty"`
}

func (rt *Router) handleInfer(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req wireRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "invalid JSON body: "+err.Error())
		return
	}
	start := time.Now()
	code := rt.route(r.Context(), w, req)
	rt.metrics.observeRequest(code, time.Since(start).Seconds())
}

// route admits, places, and forwards one request, writing the response. It
// returns the status code answered.
func (rt *Router) route(ctx context.Context, w http.ResponseWriter, req wireRequest) int {
	span := rt.tracer.Begin(trace.TrackRouter, "route")

	cs := rt.admission.resolve(req.Class)
	className := cs.cfg.Name
	if reason := rt.admission.admit(cs, rt.loadFactor()); reason != "" {
		rt.metrics.observeShed(className, reason)
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusTooManyRequests, "shed: "+reason+" (class "+className+")")
		span.End()
		return http.StatusTooManyRequests
	}

	// Class policy: full-horizon classes force EarlyExit off; budgeted
	// classes get the SLO controller's margin and inherit the class budget
	// when the request carries none.
	if cs.cfg.FullHorizon && req.EarlyExit == nil {
		off := false
		req.EarlyExit = &off
	}
	if cs.slo != nil && req.ExitMargin == 0 {
		req.ExitMargin = cs.slo.exitMargin()
	}
	if cs.cfg.BudgetMS > 0 && req.BudgetMS == 0 {
		req.BudgetMS = cs.cfg.BudgetMS
	}

	session := req.Session
	if session == "" {
		// Anonymous requests spread by content so they don't all pile on the
		// hash of "".
		session = fmt.Sprintf("anon-%x", contentHash(req.Input))
	}

	candidates := rt.candidates(session)
	if len(candidates) == 0 {
		rt.metrics.observeShed(className, shedReasonNoFleet)
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusServiceUnavailable, "no alive backends")
		span.End()
		return http.StatusServiceUnavailable
	}

	body, err := json.Marshal(req.InferRequest)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		span.End()
		return http.StatusBadRequest
	}

	var lastErr error
	for attempt, b := range candidates {
		select {
		case <-ctx.Done():
			httpError(w, http.StatusServiceUnavailable, "client went away: "+ctx.Err().Error())
			span.End()
			return http.StatusServiceUnavailable
		default:
		}
		if attempt > 0 {
			rt.metrics.observeFailover()
			fspan := rt.tracer.Begin(trace.TrackRouter, "failover")
			fspan.End(trace.Attr{Key: "attempt", Val: int64(attempt)})
		}
		b.inflight.Add(1)
		rttSpan := rt.tracer.Begin(trace.TrackRouter, "backend_rtt")
		sendStart := time.Now()
		resp, fellBack, err := rt.transport.infer(b, body)
		rtt := time.Since(sendStart)
		rttSpan.End(trace.Attr{Key: "attempt", Val: int64(attempt)})
		b.inflight.Add(-1)
		if err != nil {
			lastErr = err
			rt.noteTransportFailure(b)
			continue
		}
		if fellBack {
			rt.metrics.observeFallback()
		}
		rt.metrics.observeRTT(rtt.Seconds())
		latencyMS := rtt.Seconds() * 1000
		cs.slo.observe(latencyMS)
		rt.registry.observe(b.id, resp.Code, latencyMS)
		if resp.Code == http.StatusServiceUnavailable {
			// The backend itself refused — draining or saturated. Unlike a
			// 429 (a class shed the client should back off from), a 503 is
			// specific to this replica, so try an alternate before surfacing
			// it. The drain handoff leans on this: a request already in
			// flight toward an announced-draining replica fails over here
			// instead of erroring at the client.
			rt.metrics.observeShed(className, shedReasonCapacity)
			if attempt < len(candidates)-1 {
				lastErr = fmt.Errorf("backend %s unavailable (503)", b.id)
				continue
			}
		} else if resp.Code == http.StatusTooManyRequests {
			// The backend's class admission shed; surface its Retry-After.
			rt.metrics.observeShed(className, shedReasonCapacity)
		}
		if resp.RetryAfter > 0 {
			w.Header().Set("Retry-After", strconv.Itoa(resp.RetryAfter))
		}
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("X-Skipper-Backend", b.id)
		w.WriteHeader(resp.Code)
		w.Write(resp.Body)
		span.End(trace.Attr{Key: "attempts", Val: int64(attempt + 1)})
		return resp.Code
	}
	msg := "all backends failed"
	if lastErr != nil {
		msg += ": " + lastErr.Error()
	}
	httpError(w, http.StatusBadGateway, msg)
	span.End(trace.Attr{Key: "attempts", Val: int64(len(candidates))})
	return http.StatusBadGateway
}

// candidates returns the ordered backends to try for a session: the canary
// backend when the session falls in the canary fraction, else the ring
// successor list (primary + failover alternates).
func (rt *Router) candidates(session string) []*backend {
	canaryID, fraction := rt.registry.active()
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	if canaryID != "" && hashFraction(session) < fraction {
		if cb := rt.backends[canaryID]; cb != nil && cb.State() == StateAlive {
			// The canary cohort still fails over to the stable ring; a dead
			// canary must not black-hole its sessions.
			out := []*backend{cb}
			for _, id := range rt.ring.Successors(session, rt.cfg.FailoverAttempts) {
				out = append(out, rt.backends[id])
			}
			return rt.orderBySuspicionLocked(out)
		}
	}
	ids := rt.ring.Successors(session, 1+rt.cfg.FailoverAttempts)
	out := make([]*backend, 0, len(ids))
	for _, id := range ids {
		out = append(out, rt.backends[id])
	}
	return rt.orderBySuspicionLocked(out)
}

// orderBySuspicionLocked stably partitions the candidate list so backends this
// router locally suspects come last. A suspect below quorum stays in the ring
// (the tier has not agreed it is dead), but this router has firsthand evidence
// against it, so its own traffic tries the trusted alternates first. Callers
// hold rt.mu (read or write).
func (rt *Router) orderBySuspicionLocked(in []*backend) []*backend {
	clean := in[:0]
	var tainted []*backend
	for _, b := range in {
		if rt.susp.selfSuspects(b.id) {
			tainted = append(tainted, b)
		} else {
			clean = append(clean, b)
		}
	}
	return append(clean, tainted...)
}

// hashFraction maps a session key to [0, 1) on an axis independent of ring
// placement, so the canary cohort is a stable but uncorrelated subset.
func hashFraction(session string) float64 {
	return float64(ringHash("canary|"+session)>>11) / (1 << 53)
}

// contentHash keys anonymous requests off their payload.
func contentHash(input []float32) uint64 {
	h := uint64(1469598103934665603) // fnv64a offset
	for _, v := range input {
		bits := uint32(v * 255)
		h = (h ^ uint64(bits&0xff)) * 1099511628211
	}
	return h
}

// noteTransportFailure counts a data-path error against a backend's health.
// A hard transport failure fast-tracks the local suspicion vote — no waiting
// out DeadAfter heartbeats — and the backend dies the moment the vote reaches
// quorum. With a single router the majority is 1, so this is still immediate
// death (the pre-tier fast track) and the blast radius of a kill -9 stays
// bounded to the dead replica's in-flight requests. In a tier, one router's
// flaky NIC cannot evict a replica the rest of the quorum still reaches —
// meanwhile candidates() orders locally-suspect backends last, so this
// router's own traffic avoids the replica it distrusts.
func (rt *Router) noteTransportFailure(b *backend) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	b.misses = rt.cfg.DeadAfter
	rt.suspectLocked(b, time.Now())
}

// ---- control/observability plane ----

// FleetInfo is the GET /v1/fleet body.
type FleetInfo struct {
	RouterID string        `json:"router_id,omitempty"`
	Backends []BackendInfo `json:"backends"`
	Ring     []string      `json:"ring"`
	Canary   CanaryStatus  `json:"canary"`
	Classes  []ClassConfig `json:"classes"`
	Peers    []PeerInfo    `json:"peers,omitempty"`
}

func (rt *Router) fleetInfo() FleetInfo {
	rt.mu.RLock()
	info := FleetInfo{RouterID: rt.cfg.PeerID, Ring: rt.ring.Nodes()}
	for _, id := range rt.order {
		info.Backends = append(info.Backends, rt.backends[id].info())
	}
	rt.mu.RUnlock()
	info.Canary = rt.registry.status()
	for _, name := range rt.admission.classNames() {
		info.Classes = append(info.Classes, rt.admission.resolve(name).cfg)
	}
	for _, l := range rt.peers {
		info.Peers = append(info.Peers, l.info(rt.cfg.SuspicionStale))
	}
	return info
}

// SetClasses replaces the admission configuration at runtime and replicates
// it to the peer routers.
func (rt *Router) SetClasses(classes []ClassConfig, defaultClass string) error {
	if len(classes) == 0 {
		return fmt.Errorf("router: at least one class is required")
	}
	rt.admission.setLocal(classes, defaultClass)
	rt.kickSync()
	return nil
}

// Handler returns the router's HTTP mux: the data plane (/v1/infer), the
// control plane (canary lifecycle), and observability (/metrics, /healthz,
// /readyz, /v1/fleet). /v1/config proxies the first alive backend so clients
// built for a single replica (the loadgen) work unchanged against the fleet.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/infer", rt.handleInfer)
	mux.HandleFunc("/v1/fleet", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, rt.fleetInfo())
	})
	mux.HandleFunc("/v1/config", rt.handleConfigProxy)
	mux.HandleFunc("/v1/stream/place", rt.handleStreamPlace)
	mux.HandleFunc("/v1/canary", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			httpError(w, http.StatusMethodNotAllowed, "POST required")
			return
		}
		var body struct {
			Path     string  `json:"path"`
			Fraction float64 `json:"fraction"`
		}
		if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
			httpError(w, http.StatusBadRequest, err.Error())
			return
		}
		if body.Fraction == 0 {
			body.Fraction = 0.05
		}
		if err := rt.StartCanary(body.Path, body.Fraction); err != nil {
			httpError(w, http.StatusConflict, err.Error())
			return
		}
		writeJSON(w, http.StatusOK, rt.registry.status())
	})
	mux.HandleFunc("/v1/promote", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			httpError(w, http.StatusMethodNotAllowed, "POST required")
			return
		}
		if err := rt.Promote("operator request"); err != nil {
			httpError(w, http.StatusConflict, err.Error())
			return
		}
		writeJSON(w, http.StatusOK, rt.registry.status())
	})
	mux.HandleFunc("/v1/rollback", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			httpError(w, http.StatusMethodNotAllowed, "POST required")
			return
		}
		if err := rt.Rollback("operator request"); err != nil {
			httpError(w, http.StatusConflict, err.Error())
			return
		}
		writeJSON(w, http.StatusOK, rt.registry.status())
	})
	mux.HandleFunc("/v1/classes", func(w http.ResponseWriter, r *http.Request) {
		switch r.Method {
		case http.MethodGet:
			st := rt.admission.state()
			writeJSON(w, http.StatusOK, st)
		case http.MethodPost:
			var body struct {
				Classes      []ClassConfig `json:"classes"`
				DefaultClass string        `json:"default_class"`
			}
			if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
				httpError(w, http.StatusBadRequest, err.Error())
				return
			}
			if err := rt.SetClasses(body.Classes, body.DefaultClass); err != nil {
				httpError(w, http.StatusBadRequest, err.Error())
				return
			}
			writeJSON(w, http.StatusOK, rt.admission.state())
		default:
			httpError(w, http.StatusMethodNotAllowed, "GET or POST required")
		}
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		rt.metrics.Render(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		rt.mu.RLock()
		ready := rt.ring.Len() > 0
		rt.mu.RUnlock()
		if !ready {
			httpError(w, http.StatusServiceUnavailable, "no alive backends")
			return
		}
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// handleConfigProxy forwards GET /v1/config from the first alive backend.
func (rt *Router) handleConfigProxy(w http.ResponseWriter, r *http.Request) {
	rt.mu.RLock()
	var pick *backend
	for _, id := range rt.order {
		if b := rt.backends[id]; b.State() == StateAlive {
			pick = b
			break
		}
	}
	rt.mu.RUnlock()
	if pick == nil {
		httpError(w, http.StatusServiceUnavailable, "no alive backends")
		return
	}
	resp, err := rt.transport.client.Get(pick.spec.URL + "/v1/config")
	if err != nil {
		httpError(w, http.StatusBadGateway, err.Error())
		return
	}
	defer resp.Body.Close()
	var raw json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&raw); err != nil {
		httpError(w, http.StatusBadGateway, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(resp.StatusCode)
	w.Write(raw)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, struct {
		Error string `json:"error"`
	}{Error: msg})
}
