package router

import (
	"encoding/json"
	"net"
	"skipper/internal/frame"
	"sync"
	"time"

	"skipper/internal/serve"
	"skipper/internal/trace"
)

// The router peer channel: every router listens on Config.PeerListener for
// CRC-framed connections (frame.Write/frame.Read, the same envelope the
// fleet data path rides) carrying two protocols:
//
//   - peerSyncFrame/peerSyncAckFrame — router↔router state sync. Both
//     directions carry a full peerState JSON payload, so one round trip
//     converges both ends.
//   - serve.FleetDrainAnnounce/FleetDrainAck — replica→router drain
//     handoff. A replica beginning a graceful shutdown announces itself
//     before draining; the router vacates its arcs immediately instead of
//     waiting out a missed-heartbeat window.
//
// The frame-type bytes are disjoint (serve.Fleet* occupies 1..6, the peer
// sync pair sits at 16/17) so one listener serves both without ambiguity.
const (
	peerSyncFrame    byte = 16
	peerSyncAckFrame byte = 17
)

// peerLink is this router's outbound connection to one peer: a persistent
// framed conn redialed on failure, plus sync bookkeeping for /v1/fleet.
type peerLink struct {
	addr string
	kick chan struct{} // capacity 1; kickSync nudges an immediate sync

	mu       sync.Mutex
	conn     net.Conn
	id       string // peer id learned from its acks
	lastSync time.Time
	lastErr  string
}

func newPeerLink(addr string) *peerLink {
	return &peerLink{addr: addr, kick: make(chan struct{}, 1)}
}

// get returns the live connection, dialing if needed. Only the link's gossip
// goroutine calls it, so the dial is never raced.
func (l *peerLink) get(timeout time.Duration) (net.Conn, error) {
	l.mu.Lock()
	if l.conn != nil {
		c := l.conn
		l.mu.Unlock()
		return c, nil
	}
	l.mu.Unlock()
	c, err := net.DialTimeout("tcp", l.addr, timeout)
	if err != nil {
		return nil, err
	}
	l.mu.Lock()
	l.conn = c
	l.mu.Unlock()
	return c, nil
}

// drop closes the connection so the next sync redials (the framed protocol
// has no re-synchronization after an error).
func (l *peerLink) drop() {
	l.mu.Lock()
	if l.conn != nil {
		l.conn.Close()
		l.conn = nil
	}
	l.mu.Unlock()
}

func (l *peerLink) ok(peerID string, at time.Time) {
	l.mu.Lock()
	l.id = peerID
	l.lastSync = at
	l.lastErr = ""
	l.mu.Unlock()
}

func (l *peerLink) fail(err error) {
	l.mu.Lock()
	l.lastErr = err.Error()
	l.mu.Unlock()
}

// PeerInfo is the /v1/fleet view of one peer router.
type PeerInfo struct {
	Addr string `json:"addr"`
	ID   string `json:"id,omitempty"`
	// Synced reports whether the last completed sync is fresh enough for the
	// peer's suspicion votes to count toward quorum.
	Synced        bool    `json:"synced"`
	LastSyncAgoMS float64 `json:"last_sync_ago_ms,omitempty"`
	LastError     string  `json:"last_error,omitempty"`
}

func (l *peerLink) info(staleAfter time.Duration) PeerInfo {
	l.mu.Lock()
	defer l.mu.Unlock()
	pi := PeerInfo{Addr: l.addr, ID: l.id, LastError: l.lastErr}
	if !l.lastSync.IsZero() {
		ago := time.Since(l.lastSync)
		pi.LastSyncAgoMS = float64(ago.Microseconds()) / 1000
		pi.Synced = ago <= staleAfter
	}
	return pi
}

// peerConns tracks accepted peer-channel connections so Close can unblock
// their reads; add refuses once closed so a conn accepted during shutdown
// cannot leak its serving goroutine.
type peerConns struct {
	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]bool
}

func (p *peerConns) add(c net.Conn) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return false
	}
	if p.conns == nil {
		p.conns = map[net.Conn]bool{}
	}
	p.conns[c] = true
	return true
}

func (p *peerConns) remove(c net.Conn) {
	p.mu.Lock()
	delete(p.conns, c)
	p.mu.Unlock()
}

func (p *peerConns) closeAll() {
	p.mu.Lock()
	p.closed = true
	for c := range p.conns {
		c.Close()
	}
	p.conns = nil
	p.mu.Unlock()
}

// peerAcceptLoop accepts peer-channel connections until the listener closes.
func (rt *Router) peerAcceptLoop() {
	defer rt.wg.Done()
	for {
		conn, err := rt.cfg.PeerListener.Accept()
		if err != nil {
			return // listener closed (shutdown) or fatal accept error
		}
		if !rt.inbound.add(conn) {
			conn.Close()
			return
		}
		rt.wg.Add(1)
		go func() {
			defer rt.wg.Done()
			rt.servePeerConn(conn)
		}()
	}
}

// servePeerConn answers one peer-channel connection's frames until it closes
// or violates the protocol.
func (rt *Router) servePeerConn(conn net.Conn) {
	defer func() {
		rt.inbound.remove(conn)
		conn.Close()
	}()
	for {
		typ, payload, err := frame.Read(conn)
		if err != nil {
			return // EOF, torn connection, or bad frame: the dialer owns retry
		}
		switch typ {
		case peerSyncFrame:
			var st peerState
			if err := json.Unmarshal(payload, &st); err != nil {
				return
			}
			rt.mergePeerState(st)
			buf, err := json.Marshal(rt.localPeerState())
			if err != nil {
				return
			}
			conn.SetWriteDeadline(time.Now().Add(rt.syncTimeout()))
			if err := frame.Write(conn, peerSyncAckFrame, buf); err != nil {
				return
			}
			conn.SetWriteDeadline(time.Time{})
		case serve.FleetDrainAnnounce:
			var ann serve.DrainAnnouncement
			if err := json.Unmarshal(payload, &ann); err != nil {
				return
			}
			rt.handleDrainAnnounce(ann.URL)
			conn.SetWriteDeadline(time.Now().Add(rt.syncTimeout()))
			if err := frame.Write(conn, serve.FleetDrainAck, nil); err != nil {
				return
			}
			conn.SetWriteDeadline(time.Time{})
			// Relay the drain to the other routers right away, in case the
			// replica could not reach all of them itself.
			rt.kickSync()
		default:
			return // protocol violation: drop the connection
		}
	}
}

// handleDrainAnnounce processes a replica's shutdown announcement: the
// backend leaves the ring now, with zero missed-heartbeat window, and the
// drainAnnounced latch keeps a pre-drain heartbeat pong (still reporting
// draining=false) from resurrecting it. The latch clears on death, so a
// restarted process rejoins normally.
func (rt *Router) handleDrainAnnounce(url string) {
	rt.mu.Lock()
	b := rt.backends[url]
	if b == nil {
		rt.mu.Unlock()
		return
	}
	first := !b.drainAnnounced.Swap(true)
	if b.State() != StateDead {
		rt.setDrainingLocked(b)
	}
	rt.mu.Unlock()
	// Count every direct announcement, even when a gossip relay from another
	// router latched the drain first — the metric tracks frames accepted on
	// this peer channel, not which path won the race.
	rt.metrics.observeDrainAnnounce()
	if first {
		rt.tracer.Event(trace.TrackRouter, "drain_announced")
	}
}
