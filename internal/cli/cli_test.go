package cli

import (
	"fmt"
	"os"
	"testing"
)

func TestFatalfExitsNonZeroWithProgramName(t *testing.T) {
	oldExit, oldStderr := exit, os.Stderr
	defer func() { exit, os.Stderr = oldExit, oldStderr }()

	code := -1
	exit = func(c int) { code = c }
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stderr = w

	Fatal(fmt.Errorf("boom: %w", os.ErrNotExist))

	w.Close()
	buf := make([]byte, 256)
	n, _ := r.Read(buf)
	os.Stderr = oldStderr

	if code != 1 {
		t.Fatalf("exit code %d, want 1", code)
	}
	got := string(buf[:n])
	want := fmt.Sprintf("%s: boom: %v\n", prog(), os.ErrNotExist)
	if got != want {
		t.Fatalf("stderr %q, want %q", got, want)
	}
}
