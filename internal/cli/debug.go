package cli

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"

	"skipper/internal/trace"
)

// Mount adds one extra handler to the debug mux a binary serves behind
// -debug-addr (e.g. a subsystem's /metrics endpoint).
type Mount struct {
	Pattern string
	Handler http.Handler
}

// StartDebug serves net/http/pprof plus the tracer's plain-text span summary
// (at /debug/spans) on addr, in the background, and returns the bound
// address. Every skipper-* binary mounts the same mux behind its -debug-addr
// flag, plus any binary-specific mounts. Pass addr "" to disable (returns
// "", nil).
func StartDebug(addr string, t *trace.Tracer, mounts ...Mount) (string, error) {
	if addr == "" {
		return "", nil
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/spans", trace.SummaryHandler(t))
	for _, m := range mounts {
		mux.Handle(m.Pattern, m.Handler)
	}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("debug server: %w", err)
	}
	go func() {
		if err := http.Serve(ln, mux); err != nil {
			fmt.Fprintln(os.Stderr, "debug server:", err)
		}
	}()
	return ln.Addr().String(), nil
}

// WriteTrace writes the tracer's Chrome trace_event JSON to path (load it at
// chrome://tracing or https://ui.perfetto.dev). A nil tracer writes an empty
// trace.
func WriteTrace(path string, t *trace.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("trace output: %w", err)
	}
	if err := t.WriteChromeTrace(f); err != nil {
		f.Close()
		return fmt.Errorf("trace output: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("trace output: %w", err)
	}
	return nil
}
