// Package cli holds the tiny pieces shared by the skipper-* binaries.
package cli

import (
	"fmt"
	"os"
	"path/filepath"
)

// exit is swapped out by tests.
var exit = os.Exit

// Fatalf prints "<binary>: <message>" to stderr and exits non-zero. The
// binary name is derived from os.Args[0], so every cmd/skipper-* main can
// share it.
func Fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "%s: %s\n", prog(), fmt.Sprintf(format, args...))
	exit(1)
}

// Fatal is Fatalf for a bare error.
func Fatal(err error) {
	Fatalf("%v", err)
}

func prog() string {
	if len(os.Args) == 0 || os.Args[0] == "" {
		return "skipper"
	}
	return filepath.Base(os.Args[0])
}
