package stream

import (
	"encoding/json"
	"fmt"
	"net"
	"time"

	"skipper/internal/frame"
)

// Client is a streaming-session client over one framed TCP connection to a
// replica's fleet listener. It is not safe for concurrent use; a session's
// windows are ordered, so one goroutine per stream is the natural shape.
type Client struct {
	conn    net.Conn
	timeout time.Duration
}

// Dial connects to a replica's fleet address.
func Dial(addr string, timeout time.Duration) (*Client, error) {
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn, timeout: timeout}, nil
}

// Close drops the connection (the server-side session lives on until TTL,
// snapshot, or migration).
func (c *Client) Close() error { return c.conn.Close() }

// roundTrip sends one request frame and decodes the reply, surfacing
// TypeError replies as *Error.
func (c *Client) roundTrip(typ byte, payload []byte, want byte) ([]byte, error) {
	if err := c.conn.SetDeadline(time.Now().Add(c.timeout)); err != nil {
		return nil, err
	}
	if err := frame.Write(c.conn, typ, payload); err != nil {
		return nil, err
	}
	rtyp, rp, err := frame.Read(c.conn)
	if err != nil {
		return nil, err
	}
	if rtyp == TypeError {
		var er ErrorReply
		if err := json.Unmarshal(rp, &er); err != nil {
			return nil, fmt.Errorf("stream: undecodable error reply: %w", err)
		}
		return nil, &Error{Code: er.Code, Msg: er.Error, Window: er.Window}
	}
	if rtyp != want {
		return nil, fmt.Errorf("stream: unexpected reply frame 0x%02x (want 0x%02x)", rtyp, want)
	}
	return rp, nil
}

func (c *Client) jsonCall(typ byte, req any, want byte, rep any) error {
	buf, err := json.Marshal(req)
	if err != nil {
		return err
	}
	rp, err := c.roundTrip(typ, buf, want)
	if err != nil {
		return err
	}
	if rep == nil {
		return nil
	}
	return json.Unmarshal(rp, rep)
}

// Open opens or resumes a session.
func (c *Client) Open(req OpenRequest) (OpenReply, error) {
	var rep OpenReply
	err := c.jsonCall(TypeOpen, req, TypeOpened, &rep)
	return rep, err
}

// Window feeds one event window and returns its prediction.
func (c *Client) Window(req WindowRequest) (WindowReply, error) {
	var rep WindowReply
	err := c.jsonCall(TypeWindow, req, TypePred, &rep)
	return rep, err
}

// CloseSession ends the session server-side.
func (c *Client) CloseSession(id string, snapshot bool) (ClosedReply, error) {
	var rep ClosedReply
	err := c.jsonCall(TypeClose, CloseRequest{Session: id, Snapshot: snapshot}, TypeClosed, &rep)
	return rep, err
}

// Export seals the session and returns its encoded state record.
func (c *Client) Export(id string) ([]byte, error) {
	buf, err := json.Marshal(ExportRequest{Session: id})
	if err != nil {
		return nil, err
	}
	return c.roundTrip(TypeExport, buf, TypeState)
}

// Import installs an exported record on this replica.
func (c *Client) Import(raw []byte) (ImportedReply, error) {
	var rep ImportedReply
	rp, err := c.roundTrip(TypeImport, raw, TypeImported)
	if err != nil {
		return rep, err
	}
	return rep, json.Unmarshal(rp, &rep)
}

// ListSessions returns the replica's live session ids.
func (c *Client) ListSessions() ([]string, error) {
	rp, err := c.roundTrip(TypeList, nil, TypeListing)
	if err != nil {
		return nil, err
	}
	var rep ListingReply
	if err := json.Unmarshal(rp, &rep); err != nil {
		return nil, err
	}
	return rep.Sessions, nil
}
