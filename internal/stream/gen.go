package stream

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"skipper/internal/tensor"
)

// streamNS namespaces the generator's DeriveSeed streams.
const streamNS uint64 = 0x73747265 // "stre"

// Placement is the router's answer to /v1/stream/place: where a session's
// windows should go.
type Placement struct {
	Session   string `json:"session"`
	URL       string `json:"url"`
	FleetAddr string `json:"fleet_addr"`
}

// GenOptions parameterises the streaming load generator.
type GenOptions struct {
	// Routers are router base URLs consulted for session placement. The
	// list is walked health-aware: the last router that answered stays
	// first, failing routers are demoted behind it.
	Routers []string
	// Addr pins every session to one replica fleet address directly,
	// bypassing router placement (single-replica runs, benches).
	Addr string

	Sessions int
	// Windows per session.
	Windows int
	// WindowSteps is the timestep count per window.
	WindowSteps int
	// QuietFrac is the fraction of windows generated with zero events.
	QuietFrac float64
	// EventsPerWindow is the event count of a busy window.
	EventsPerWindow int
	// InputLen is the model's flat input volume; zero takes it from the
	// session's OpenReply.
	InputLen int
	Seed     uint64
	// SessionPrefix names sessions "<prefix>-<i>".
	SessionPrefix string
	Timeout       time.Duration
	// Reconnects bounds how many times one session survives a transport
	// failure by re-placing and resuming. Zero means 8.
	Reconnects int
	// SkipThreshold passes a per-session gate override (nil = server
	// default).
	SkipThreshold *int
	// Interval paces each session: the gap between acknowledged windows.
	// Zero streams as fast as the server answers; the smoke scripts set
	// this so a replica kill reliably lands mid-stream.
	Interval time.Duration
}

// GenReport aggregates a streaming run.
type GenReport struct {
	Sessions int `json:"sessions"`
	Windows  int `json:"windows_per_session"`

	WindowsOK      int64 `json:"windows_ok"`
	WindowsSkipped int64 `json:"windows_skipped"`
	// Replays counts windows re-sent after a reconnect rewound the cursor
	// to the server's last durable state.
	Replays    int64 `json:"replays"`
	Reconnects int64 `json:"reconnects"`
	// Migrations counts reconnects that resumed on a different replica.
	Migrations int64 `json:"migrations"`
	// Resets counts sessions that lost membrane state (a resume came back
	// fresh) — the smoke scripts gate on zero.
	Resets   int64 `json:"resets"`
	Failures int64 `json:"failures"`

	P50MS float64 `json:"p50_ms"`
	P99MS float64 `json:"p99_ms"`
	// MaxPauseMS is the longest window latency observed — during a
	// migration this is the client-visible pause (reconnect + re-place +
	// resume + replay of the interrupted window).
	MaxPauseMS float64 `json:"max_pause_ms"`
}

// SkippedFraction is the skipped share of acknowledged windows.
func (r GenReport) SkippedFraction() float64 {
	if r.WindowsOK == 0 {
		return 0
	}
	return float64(r.WindowsSkipped) / float64(r.WindowsOK)
}

func (o GenOptions) withDefaults() GenOptions {
	if o.Sessions <= 0 {
		o.Sessions = 1
	}
	if o.Windows <= 0 {
		o.Windows = 10
	}
	if o.WindowSteps <= 0 {
		o.WindowSteps = 8
	}
	if o.EventsPerWindow <= 0 {
		o.EventsPerWindow = 16
	}
	if o.SessionPrefix == "" {
		o.SessionPrefix = "gen"
	}
	if o.Timeout <= 0 {
		o.Timeout = 5 * time.Second
	}
	if o.Reconnects <= 0 {
		o.Reconnects = 8
	}
	return o
}

// GenWindow deterministically generates window w of session idx: quiet (no
// events) with probability QuietFrac, else EventsPerWindow events uniform
// over (t, idx). Determinism is what lets a client replay any window after
// a reconnect and what lets the bench replay an identical stream against a
// second server for bitwise comparison.
func GenWindow(o GenOptions, sessIdx, w, inputLen int) []uint32 {
	rng := tensor.NewRNG(tensor.DeriveSeed(o.Seed, streamNS, uint64(sessIdx), uint64(w)))
	if rng.Float64() < o.QuietFrac {
		return nil
	}
	ev := make([]uint32, 0, 2*o.EventsPerWindow)
	for i := 0; i < o.EventsPerWindow; i++ {
		ev = append(ev, uint32(rng.Intn(o.WindowSteps)), uint32(rng.Intn(inputLen)))
	}
	return ev
}

// routerPool walks a router list health-aware: pick returns the remembered
// last-healthy router first; demote pushes a failing router behind the
// healthy cursor for a cooldown.
type routerPool struct {
	urls []string
	mu   sync.Mutex
	cur  int
	bad  []time.Time
}

func newRouterPool(urls []string) *routerPool {
	return &routerPool{urls: urls, bad: make([]time.Time, len(urls))}
}

const routerCooldown = 2 * time.Second

// order returns candidate indices: the last-healthy cursor first, skipping
// routers still in demotion cooldown (they come last, as a final resort).
func (p *routerPool) order() []int {
	p.mu.Lock()
	defer p.mu.Unlock()
	now := time.Now()
	var healthy, cooling []int
	for i := range p.urls {
		j := (p.cur + i) % len(p.urls)
		if now.Before(p.bad[j]) {
			cooling = append(cooling, j)
		} else {
			healthy = append(healthy, j)
		}
	}
	return append(healthy, cooling...)
}

func (p *routerPool) demote(i int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.bad[i] = time.Now().Add(routerCooldown)
	if p.cur == i {
		p.cur = (i + 1) % len(p.urls)
	}
}

func (p *routerPool) promote(i int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.bad[i] = time.Time{}
	p.cur = i
}

// place asks the routers where a session should stream to.
func (p *routerPool) place(client *http.Client, session string) (Placement, error) {
	var lastErr error
	for _, i := range p.order() {
		resp, err := client.Get(p.urls[i] + "/v1/stream/place?session=" + session)
		if err != nil {
			p.demote(i)
			lastErr = err
			continue
		}
		var pl Placement
		err = json.NewDecoder(resp.Body).Decode(&pl)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK || pl.FleetAddr == "" {
			if resp.StatusCode >= 500 || err != nil {
				p.demote(i)
			}
			lastErr = fmt.Errorf("stream: place via %s: status %d err %v", p.urls[i], resp.StatusCode, err)
			continue
		}
		p.promote(i)
		return pl, nil
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("stream: no routers configured")
	}
	return Placement{}, lastErr
}

// RunStreamGen drives Sessions concurrent streaming sessions, each sending
// Windows deterministic event windows, surviving replica failures by
// re-placing through the routers and resuming (RequireResume — a session
// that cannot resume counts as a Reset, never silently restarts).
func RunStreamGen(opts GenOptions) (GenReport, error) {
	o := opts.withDefaults()
	if len(o.Routers) == 0 && o.Addr == "" {
		return GenReport{}, fmt.Errorf("stream: GenOptions needs Routers or Addr")
	}
	pool := newRouterPool(o.Routers)
	httpc := &http.Client{Timeout: o.Timeout}
	rep := GenReport{Sessions: o.Sessions, Windows: o.Windows}

	var mu sync.Mutex
	var lats []float64
	var wg sync.WaitGroup
	var firstErr error

	for si := 0; si < o.Sessions; si++ {
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			id := fmt.Sprintf("%s-%d", o.SessionPrefix, si)
			err := runSession(o, pool, httpc, id, si, &rep, &mu, &lats)
			if err != nil {
				mu.Lock()
				rep.Failures++
				if firstErr == nil {
					firstErr = fmt.Errorf("session %s: %w", id, err)
				}
				mu.Unlock()
			}
		}(si)
	}
	wg.Wait()

	if len(lats) > 0 {
		sort.Float64s(lats)
		rep.P50MS = pct(lats, 50)
		rep.P99MS = pct(lats, 99)
		rep.MaxPauseMS = lats[len(lats)-1]
	}
	return rep, firstErr
}

// connect dials a session's current placement and opens it.
func connect(o GenOptions, pool *routerPool, httpc *http.Client, id string, requireResume bool) (*Client, OpenReply, string, error) {
	addr := o.Addr
	if addr == "" {
		pl, err := pool.place(httpc, id)
		if err != nil {
			return nil, OpenReply{}, "", err
		}
		addr = pl.FleetAddr
	}
	c, err := Dial(addr, o.Timeout)
	if err != nil {
		return nil, OpenReply{}, addr, err
	}
	rep, err := c.Open(OpenRequest{
		Session:       id,
		Seed:          tensor.DeriveSeed(o.Seed, streamNS, uint64(len(id))),
		SkipThreshold: o.SkipThreshold,
		RequireResume: requireResume,
	})
	if err != nil {
		c.Close()
		return nil, OpenReply{}, addr, err
	}
	return c, rep, addr, nil
}

func runSession(o GenOptions, pool *routerPool, httpc *http.Client, id string, si int, rep *GenReport, mu *sync.Mutex, lats *[]float64) error {
	c, open, addr, err := connect(o, pool, httpc, id, false)
	if err != nil {
		return err
	}
	defer func() {
		if c != nil {
			c.CloseSession(id, false)
			c.Close()
		}
	}()
	inputLen := o.InputLen
	if inputLen == 0 {
		inputLen = open.InputLen
	}
	if inputLen == 0 {
		return fmt.Errorf("input length unknown (server reported 0)")
	}

	next := open.Window // fresh sessions start at 0
	everAcked := false
	reconnects := 0
	for next < o.Windows {
		seq := next
		req := WindowRequest{Session: id, Seq: seq, Steps: o.WindowSteps, Events: GenWindow(o, si, seq, inputLen)}
		start := time.Now()
		wrep, err := c.Window(req)
		if err != nil {
			if se, ok := err.(*Error); ok && se.Code == CodeBadSeq {
				// The server is behind (resumed from an older snapshot) or
				// ahead (our reconnect re-sent an acked window): resync to
				// its cursor and replay.
				mu.Lock()
				rep.Replays++
				mu.Unlock()
				next = se.Window
				continue
			}
			// Transport failure or a moved/lost session: re-place and
			// resume. RequireResume makes a state loss loud: a replica
			// that would answer with a fresh session errors instead.
			reconnects++
			if reconnects > o.Reconnects {
				return fmt.Errorf("window %d: %w (after %d reconnects)", seq, err, reconnects-1)
			}
			c.Close()
			c = nil
			var rerr error
			var ropen OpenReply
			var raddr string
			for attempt := 0; attempt < 40; attempt++ {
				time.Sleep(time.Duration(25+attempt*25) * time.Millisecond)
				c, ropen, raddr, rerr = connect(o, pool, httpc, id, everAcked)
				if rerr == nil {
					break
				}
			}
			if rerr != nil {
				return fmt.Errorf("window %d: reconnect failed: %w", seq, rerr)
			}
			mu.Lock()
			rep.Reconnects++
			if raddr != addr {
				rep.Migrations++
			}
			if everAcked && !ropen.Resumed {
				rep.Resets++
			}
			mu.Unlock()
			addr = raddr
			next = ropen.Window
			continue
		}
		ms := float64(time.Since(start).Microseconds()) / 1000
		mu.Lock()
		rep.WindowsOK++
		if wrep.Skipped {
			rep.WindowsSkipped++
		}
		*lats = append(*lats, ms)
		mu.Unlock()
		everAcked = true
		next = seq + 1
		if o.Interval > 0 && next < o.Windows {
			time.Sleep(o.Interval)
		}
	}
	return nil
}

// pct reads a percentile from an ascending-sorted slice.
func pct(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p / 100 * float64(len(sorted)-1))
	return sorted[i]
}
