// Package stream implements stateful streaming inference sessions: a
// long-lived framed-TCP connection feeds event windows continuously, the
// membrane state persists server-side in a Session between windows, and
// per-window predictions stream back as they are produced — the temporal
// analogue of the paper's time-skipping applied online. A window whose
// event count falls at or below the session's skip threshold advances the
// membranes by the leak-only fast path (layers.QuietState) without running
// the full forward, bitwise identically to stepping zero tensors.
//
// Sessions are durable and movable: periodic snapshots via
// runstate.SessionStore survive a serve restart bit-identically, and the
// SessionExport/SessionImport frame pair lets the router drain-handoff live
// sessions between replicas without resetting state.
package stream

import (
	"fmt"
)

// Frame type bytes. Stream frames ride the same fleet connection as
// internal/serve's fleet protocol, whose types occupy 1..7; the stream
// namespace starts at 0x20 so the two dispatch tables can never collide.
const (
	// TypeOpen opens (or resumes) a session; payload OpenRequest,
	// reply TypeOpened with OpenReply.
	TypeOpen byte = 0x20 + iota
	// TypeOpened acknowledges an open.
	TypeOpened
	// TypeWindow feeds one event window; payload WindowRequest, reply
	// TypePred with WindowReply.
	TypeWindow
	// TypePred carries the per-window prediction.
	TypePred
	// TypeClose closes a session; payload CloseRequest, reply TypeClosed.
	TypeClose
	// TypeClosed acknowledges a close.
	TypeClosed
	// TypeExport seals a session and ships its state; payload
	// ExportRequest, reply TypeState with a raw runstate session record.
	TypeExport
	// TypeState carries an encoded runstate.SessionRecord.
	TypeState
	// TypeImport installs an exported record; payload is the raw record,
	// reply TypeImported with ImportedReply.
	TypeImport
	// TypeImported acknowledges an import.
	TypeImported
	// TypeList asks for the live session ids; empty payload, reply
	// TypeListing with ListingReply.
	TypeList
	// TypeListing carries the live session ids.
	TypeListing
	// TypeError is the failure reply to any stream request; payload
	// ErrorReply.
	TypeError byte = 0x2F
)

// IsStreamType reports whether a frame type byte belongs to the stream
// protocol (used by serve's fleet dispatch).
func IsStreamType(t byte) bool {
	return (t >= TypeOpen && t <= TypeListing) || t == TypeError
}

// Error codes carried by ErrorReply.
const (
	// CodeUnknownSession: no such live session (and no durable record when
	// resume was required).
	CodeUnknownSession = "unknown_session"
	// CodeMoved: the session was exported to another replica; re-place via
	// the router and resume there.
	CodeMoved = "moved"
	// CodeBadSeq: the window sequence number does not match the session
	// cursor; the reply's Window field tells the client where to resync.
	CodeBadSeq = "bad_seq"
	// CodeBadRequest: malformed payload or invalid field.
	CodeBadRequest = "bad_request"
	// CodeShutdown: the manager is shutting down.
	CodeShutdown = "shutdown"
	// CodeInternal: server-side failure.
	CodeInternal = "internal"
)

// OpenRequest opens a new session or resumes an existing one (live, or
// durable on disk, or imported from another replica).
type OpenRequest struct {
	Session string `json:"session"`
	// Seed is the session's RNG identity; recorded at creation and echoed
	// on resume so the client can verify stream identity.
	Seed uint64 `json:"seed,omitempty"`
	// SkipThreshold overrides the server's default activity gate for this
	// session: a window with at most this many events is skipped
	// (leak-only). 0 skips only empty windows (lossless); negative
	// disables skipping. Nil selects the server default.
	SkipThreshold *int `json:"skip_threshold,omitempty"`
	// RequireResume refuses to create a fresh session when no prior state
	// exists — the client knows it had state (e.g. after a migration) and
	// a silent reset would corrupt the stream.
	RequireResume bool `json:"require_resume,omitempty"`
}

// OpenReply acknowledges an open.
type OpenReply struct {
	Session string `json:"session"`
	// Resumed is true when prior membrane state was restored (live
	// registry, durable record, or import).
	Resumed bool `json:"resumed"`
	// Window is the next window sequence number the session expects.
	Window int `json:"window"`
	// Steps is the session's timestep cursor.
	Steps int    `json:"steps"`
	Seed  uint64 `json:"seed"`
	// InputLen and Classes describe the model's input volume (C·H·W) and
	// output width so a client can generate events without a side channel.
	InputLen      int    `json:"input_len"`
	Classes       int    `json:"classes"`
	SkipThreshold int    `json:"skip_threshold"`
	ModelVersion  uint64 `json:"model_version"`
}

// WindowRequest feeds one event window: Steps timesteps of sparse events.
// Events are flat (t, idx) pairs — timestep within the window and flat
// input index — each contributing a unit spike. Windows must arrive in
// sequence order; Seq must equal the session's window cursor.
type WindowRequest struct {
	Session string `json:"session"`
	Seq     int    `json:"seq"`
	Steps   int    `json:"steps"`
	// Events holds 2·k entries for k events: [t0, idx0, t1, idx1, ...].
	Events []uint32 `json:"events,omitempty"`
}

// WindowReply is the per-window prediction.
type WindowReply struct {
	Session string `json:"session"`
	Seq     int    `json:"seq"`
	// Pred is the argmax of the readout membrane after the window's last
	// timestep; Logits carries the full readout row.
	Pred   int       `json:"pred"`
	Logits []float32 `json:"logits"`
	// Skipped is true when the whole window took the leak-only fast path.
	Skipped bool `json:"skipped"`
	// Steps is the session's cumulative timestep cursor after this window.
	Steps int `json:"steps"`
}

// CloseRequest closes a session. With Snapshot set (and a durable store
// configured) the final state is persisted so the session can reopen later;
// otherwise the state is dropped.
type CloseRequest struct {
	Session  string `json:"session"`
	Snapshot bool   `json:"snapshot,omitempty"`
}

// ClosedReply acknowledges a close.
type ClosedReply struct {
	Session string `json:"session"`
	Window  int    `json:"window"`
}

// ExportRequest seals a session for migration. The export atomically
// removes the live session — subsequent windows get CodeMoved — and the
// reply carries the encoded runstate.SessionRecord.
type ExportRequest struct {
	Session string `json:"session"`
}

// ImportedReply acknowledges an import.
type ImportedReply struct {
	Session string `json:"session"`
	Window  int    `json:"window"`
}

// ListingReply carries the live session ids.
type ListingReply struct {
	Sessions []string `json:"sessions"`
}

// ErrorReply is the failure reply to any stream request.
type ErrorReply struct {
	Code  string `json:"code"`
	Error string `json:"error"`
	// Window carries the session's window cursor on CodeBadSeq so the
	// client can resync without a second round-trip.
	Window int `json:"window,omitempty"`
}

// Error is the typed error the manager and client surface; Code matches the
// wire codes above.
type Error struct {
	Code   string
	Msg    string
	Window int
}

func (e *Error) Error() string { return fmt.Sprintf("stream: %s: %s", e.Code, e.Msg) }

func errf(code, format string, args ...any) *Error {
	return &Error{Code: code, Msg: fmt.Sprintf(format, args...)}
}
