package stream

import (
	"encoding/json"
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"skipper/internal/faults"
	"skipper/internal/layers"
	"skipper/internal/models"
	"skipper/internal/runstate"
)

// testBuild is the streaming topology under test: the same small customnet
// the serve tests use, so the race-enabled suites stay fast.
func testBuild() (*layers.Network, error) {
	return models.Build("customnet", models.Options{
		InShape: []int{2, 8, 8},
		Classes: 4,
		Width:   0.25,
	})
}

const testInputLen = 2 * 8 * 8

// testConfig returns a manager config over a shared source network (the
// "published checkpoint" sessions pin their weights from).
func testConfig(t *testing.T) Config {
	t.Helper()
	src, err := testBuild()
	if err != nil {
		t.Fatalf("building source net: %v", err)
	}
	return Config{
		Build:  testBuild,
		Source: func() (*layers.Network, uint64) { return src, 1 },
	}
}

func newTestManager(t *testing.T, cfg Config) *Manager {
	t.Helper()
	m, err := NewManager(cfg)
	if err != nil {
		t.Fatalf("NewManager: %v", err)
	}
	t.Cleanup(m.Shutdown)
	return m
}

func testStore(t *testing.T, fsys faults.FS, clock faults.Clock) *runstate.SessionStore {
	t.Helper()
	st, err := runstate.OpenSessions(t.TempDir(), fsys, clock)
	if err != nil {
		t.Fatalf("OpenSessions: %v", err)
	}
	return st
}

// genOpts is the deterministic event stream every byte-identity test
// replays: half the windows quiet, busy windows carrying 10 events.
var genOpts = GenOptions{
	Seed:            42,
	WindowSteps:     6,
	EventsPerWindow: 10,
	QuietFrac:       0.5,
}

// feed sends windows [from, to) of the deterministic stream to session id
// and returns one logits slice per window.
func feed(t *testing.T, m *Manager, id string, from, to int) [][]float32 {
	t.Helper()
	var out [][]float32
	for w := from; w < to; w++ {
		rep, serr := m.Window(WindowRequest{
			Session: id,
			Seq:     w,
			Steps:   genOpts.WindowSteps,
			Events:  GenWindow(genOpts, 0, w, testInputLen),
		})
		if serr != nil {
			t.Fatalf("window %d: %v", w, serr)
		}
		if rep.Seq != w {
			t.Fatalf("window %d: reply seq %d", w, rep.Seq)
		}
		out = append(out, rep.Logits)
	}
	return out
}

// logitsEqual compares per-window logits bitwise — the acceptance bar for
// resume and migration is bit-identity, not tolerance.
func logitsEqual(t *testing.T, what string, got, want [][]float32) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d windows vs %d", what, len(got), len(want))
	}
	for w := range got {
		if len(got[w]) != len(want[w]) {
			t.Fatalf("%s: window %d has %d logits vs %d", what, w, len(got[w]), len(want[w]))
		}
		for i := range got[w] {
			if math.Float32bits(got[w][i]) != math.Float32bits(want[w][i]) {
				t.Fatalf("%s: window %d logit %d differs bitwise: %v vs %v",
					what, w, i, got[w][i], want[w][i])
			}
		}
	}
}

func open(t *testing.T, m *Manager, id string) OpenReply {
	t.Helper()
	rep, serr := m.Open(OpenRequest{Session: id})
	if serr != nil {
		t.Fatalf("open %s: %v", id, serr)
	}
	return rep
}

// TestStreamKillResumeByteIdentical proves durability: a session killed
// without any goodbye (the manager is simply abandoned, like a SIGKILL'd
// process) resumes from its periodic snapshot on a fresh manager and replays
// the interrupted stream with bitwise-identical per-window predictions.
func TestStreamKillResumeByteIdentical(t *testing.T) {
	const kill, total = 5, 12

	// Uninterrupted reference run.
	ref := newTestManager(t, testConfig(t))
	open(t, ref, "s")
	want := feed(t, ref, "s", 0, total)

	// Run A snapshots every window, dies (abandoned, never Shutdown) after
	// the kill-th window.
	cfg := testConfig(t)
	cfg.Store = testStore(t, nil, nil)
	cfg.SnapshotEvery = 1
	a := newTestManager(t, cfg)
	open(t, a, "s")
	logitsEqual(t, "pre-kill", feed(t, a, "s", 0, kill), want[:kill])

	// Run B shares the store directory and resumes mid-stream.
	cfgB := testConfig(t)
	cfgB.Store = cfg.Store
	b := newTestManager(t, cfgB)
	rep := open(t, b, "s")
	if !rep.Resumed {
		t.Fatalf("open after kill: session came back fresh (membrane state lost)")
	}
	if rep.Window != kill {
		t.Fatalf("resumed at window %d, want %d", rep.Window, kill)
	}
	logitsEqual(t, "post-resume", feed(t, b, "s", kill, total), want[kill:])
}

// TestStreamResumeLagReplay proves the replay contract: when the snapshot
// cadence lags the stream (SnapshotEvery > 1), a resume rewinds the cursor
// to the last durable window and the client's deterministic replay of the
// gap produces the same bits the lost replica already served.
func TestStreamResumeLagReplay(t *testing.T) {
	const total = 12

	ref := newTestManager(t, testConfig(t))
	open(t, ref, "s")
	want := feed(t, ref, "s", 0, total)

	cfg := testConfig(t)
	cfg.Store = testStore(t, nil, nil)
	cfg.SnapshotEvery = 4
	a := newTestManager(t, cfg)
	open(t, a, "s")
	feed(t, a, "s", 0, 6) // snapshots at windows 4; windows 5..6 are lost

	cfgB := testConfig(t)
	cfgB.Store = cfg.Store
	b := newTestManager(t, cfgB)
	rep := open(t, b, "s")
	if !rep.Resumed || rep.Window != 4 {
		t.Fatalf("resume landed at window %d (resumed=%v), want durable cursor 4", rep.Window, rep.Resumed)
	}
	// A stale-seq probe reports the server cursor so the client can resync.
	_, serr := b.Window(WindowRequest{Session: "s", Seq: 6, Steps: genOpts.WindowSteps})
	if serr == nil || serr.Code != CodeBadSeq || serr.Window != 4 {
		t.Fatalf("stale seq: got %v, want CodeBadSeq with window 4", serr)
	}
	logitsEqual(t, "replay", feed(t, b, "s", 4, total), want[4:])
}

// TestStreamExportImportByteIdentical proves migration: a session exported
// from one manager and imported into another continues bitwise-identically,
// and the source refuses further traffic instead of forking membrane state.
func TestStreamExportImportByteIdentical(t *testing.T) {
	const cut, total = 7, 12

	ref := newTestManager(t, testConfig(t))
	open(t, ref, "s")
	want := feed(t, ref, "s", 0, total)

	a := newTestManager(t, testConfig(t))
	open(t, a, "s")
	logitsEqual(t, "pre-migration", feed(t, a, "s", 0, cut), want[:cut])

	raw, serr := a.Export("s")
	if serr != nil {
		t.Fatalf("export: %v", serr)
	}
	// The source must never answer for the exported session again.
	if _, serr := a.Window(WindowRequest{Session: "s", Seq: cut, Steps: 1}); serr == nil || serr.Code != CodeUnknownSession {
		t.Fatalf("window at source after export: got %v, want CodeUnknownSession", serr)
	}
	if _, serr := a.Export("s"); serr == nil {
		t.Fatalf("second export of a migrated session must fail")
	}

	b := newTestManager(t, testConfig(t))
	irep, serr := b.Import(raw)
	if serr != nil {
		t.Fatalf("import: %v", serr)
	}
	if irep.Window != cut {
		t.Fatalf("imported at window %d, want %d", irep.Window, cut)
	}
	logitsEqual(t, "post-migration", feed(t, b, "s", cut, total), want[cut:])

	if a.exported.Load() != 1 || b.imported.Load() != 1 {
		t.Fatalf("migration counters: exported=%d imported=%d", a.exported.Load(), b.imported.Load())
	}
}

// TestStreamImportRejectsMismatchedModel is the state-shape guard: a record
// captured on one architecture must be refused by a replica serving another,
// never silently grafted onto incompatible layers.
func TestStreamImportRejectsMismatchedModel(t *testing.T) {
	a := newTestManager(t, testConfig(t))
	open(t, a, "s")
	feed(t, a, "s", 0, 3)
	raw, serr := a.Export("s")
	if serr != nil {
		t.Fatalf("export: %v", serr)
	}

	wide, err := models.Build("customnet", models.Options{InShape: []int{2, 8, 8}, Classes: 4, Width: 0.5})
	if err != nil {
		t.Fatalf("building wide net: %v", err)
	}
	b := newTestManager(t, Config{
		Build: func() (*layers.Network, error) {
			return models.Build("customnet", models.Options{InShape: []int{2, 8, 8}, Classes: 4, Width: 0.5})
		},
		Source: func() (*layers.Network, uint64) { return wide, 1 },
	})
	if _, serr := b.Import(raw); serr == nil || serr.Code != CodeBadRequest {
		t.Fatalf("import onto mismatched model: got %v, want CodeBadRequest", serr)
	}
	if b.Count() != 0 {
		t.Fatalf("rejected import left %d live sessions", b.Count())
	}
}

// TestStreamSkipLossless proves the default activity gate is exact: with
// threshold 0 only event-free windows take the leak-only fast path, and the
// resulting logits match a skip-disabled session bitwise on every window.
func TestStreamSkipLossless(t *testing.T) {
	const total = 12
	disabled := -1

	m := newTestManager(t, testConfig(t))
	if _, serr := m.Open(OpenRequest{Session: "gated"}); serr != nil {
		t.Fatalf("open gated: %v", serr)
	}
	if _, serr := m.Open(OpenRequest{Session: "plain", SkipThreshold: &disabled}); serr != nil {
		t.Fatalf("open plain: %v", serr)
	}

	var gated, plain [][]float32
	var skipped int
	for w := 0; w < total; w++ {
		req := WindowRequest{Seq: w, Steps: genOpts.WindowSteps, Events: GenWindow(genOpts, 0, w, testInputLen)}
		req.Session = "gated"
		g, serr := m.Window(req)
		if serr != nil {
			t.Fatalf("gated window %d: %v", w, serr)
		}
		req.Session = "plain"
		p, serr := m.Window(req)
		if serr != nil {
			t.Fatalf("plain window %d: %v", w, serr)
		}
		if g.Skipped {
			skipped++
			if len(req.Events) != 0 {
				t.Fatalf("window %d skipped despite %d events at threshold 0", w, len(req.Events)/2)
			}
		}
		if p.Skipped {
			t.Fatalf("window %d skipped with skipping disabled", w)
		}
		gated = append(gated, g.Logits)
		plain = append(plain, p.Logits)
	}
	logitsEqual(t, "skip vs full", gated, plain)
	if skipped == 0 {
		t.Fatalf("no windows skipped — quiet fraction %v should produce some", genOpts.QuietFrac)
	}
	if got := m.skipped.Load(); got != int64(skipped) {
		t.Fatalf("skipped counter %d, observed %d skipped replies", got, skipped)
	}
	if m.quiet.Load() == 0 || m.full.Load() == 0 {
		t.Fatalf("step counters: quiet=%d full=%d, want both > 0", m.quiet.Load(), m.full.Load())
	}
}

// TestStreamSnapshotFailureKeepsSessionAlive injects filesystem faults into
// the periodic snapshot: the stream must keep answering (losing only crash
// durability), and the failure must be counted.
func TestStreamSnapshotFailureKeepsSessionAlive(t *testing.T) {
	inj := faults.NewInjector(nil)
	cfg := testConfig(t)
	cfg.Store = testStore(t, inj, nil)
	cfg.SnapshotEvery = 1
	m := newTestManager(t, cfg)
	open(t, m, "s")

	inj.FailCreate(true)
	feed(t, m, "s", 0, 3)
	if m.Count() != 1 {
		t.Fatalf("session died with its snapshot: %d live", m.Count())
	}
	if m.snapFails.Load() != 3 {
		t.Fatalf("snapshot failures %d, want 3", m.snapFails.Load())
	}
	if cfg.Store.Exists("s") {
		t.Fatalf("failed snapshots left a record on disk")
	}

	// Fault clears: the next window's snapshot restores durability.
	inj.FailCreate(false)
	feed(t, m, "s", 3, 4)
	if !cfg.Store.Exists("s") {
		t.Fatalf("snapshot after fault cleared did not persist")
	}
}

// settableClock is a test clock the TTL eviction test advances by hand.
type settableClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *settableClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *settableClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// TestStreamTTLEvictionSnapshotsFirst proves an idle session is evicted
// after TTL, that eviction snapshots it first, and that a later open
// resumes the evicted state rather than starting fresh.
func TestStreamTTLEvictionSnapshotsFirst(t *testing.T) {
	clk := &settableClock{t: time.Unix(1000, 0)}
	cfg := testConfig(t)
	cfg.Store = testStore(t, nil, clk)
	cfg.TTL = 50 * time.Millisecond
	cfg.SnapshotEvery = -1 // eviction is the only snapshot path
	cfg.Clock = clk
	m := newTestManager(t, cfg)
	open(t, m, "s")
	feed(t, m, "s", 0, 4)

	clk.Advance(time.Second)
	deadline := time.Now().Add(5 * time.Second)
	for m.Count() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("idle session not evicted")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if m.evicted.Load() != 1 {
		t.Fatalf("evicted counter %d, want 1", m.evicted.Load())
	}
	rep := open(t, m, "s")
	if !rep.Resumed || rep.Window != 4 {
		t.Fatalf("post-eviction open: resumed=%v window=%d, want resume at 4", rep.Resumed, rep.Window)
	}
}

// TestStreamRequireResumeRefusesFresh: a client that has state to lose asks
// for RequireResume; a replica with no record must error loudly instead of
// silently handing back a fresh session.
func TestStreamRequireResumeRefusesFresh(t *testing.T) {
	m := newTestManager(t, testConfig(t))
	_, serr := m.Open(OpenRequest{Session: "ghost", RequireResume: true})
	if serr == nil || serr.Code != CodeUnknownSession {
		t.Fatalf("RequireResume on unknown session: got %v, want CodeUnknownSession", serr)
	}
}

// TestStreamWindowValidation covers the request guards: bad steps, odd
// event arrays, out-of-range events, and unknown sessions.
func TestStreamWindowValidation(t *testing.T) {
	m := newTestManager(t, testConfig(t))
	open(t, m, "s")
	cases := []struct {
		name string
		req  WindowRequest
		code string
	}{
		{"zero steps", WindowRequest{Session: "s", Steps: 0}, CodeBadRequest},
		{"huge steps", WindowRequest{Session: "s", Steps: maxWindowSteps + 1}, CodeBadRequest},
		{"odd events", WindowRequest{Session: "s", Steps: 4, Events: []uint32{1}}, CodeBadRequest},
		{"event t out of range", WindowRequest{Session: "s", Steps: 4, Events: []uint32{4, 0}}, CodeBadRequest},
		{"event idx out of range", WindowRequest{Session: "s", Steps: 4, Events: []uint32{0, testInputLen}}, CodeBadRequest},
		{"unknown session", WindowRequest{Session: "nope", Steps: 4}, CodeUnknownSession},
		{"stale seq", WindowRequest{Session: "s", Seq: 9, Steps: 4}, CodeBadSeq},
	}
	for _, tc := range cases {
		if _, serr := m.Window(tc.req); serr == nil || serr.Code != tc.code {
			t.Errorf("%s: got %v, want code %s", tc.name, serr, tc.code)
		}
	}
}

// TestStreamConcurrentSessions drives many sessions in parallel through one
// manager (race detector coverage for the registry, counters, and shared
// compute pool) and checks each stream stays bitwise equal to a serial
// reference run.
func TestStreamConcurrentSessions(t *testing.T) {
	const sessions, windows = 6, 6

	ref := newTestManager(t, testConfig(t))
	want := make([][][]float32, sessions)
	for i := range want {
		id := fmt.Sprintf("ref-%d", i)
		open(t, ref, id)
		for w := 0; w < windows; w++ {
			rep, serr := ref.Window(WindowRequest{
				Session: id, Seq: w, Steps: genOpts.WindowSteps,
				Events: GenWindow(genOpts, i, w, testInputLen),
			})
			if serr != nil {
				t.Fatalf("ref session %d window %d: %v", i, w, serr)
			}
			want[i] = append(want[i], rep.Logits)
		}
	}

	m := newTestManager(t, testConfig(t))
	var wg sync.WaitGroup
	errs := make(chan error, sessions)
	got := make([][][]float32, sessions)
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id := fmt.Sprintf("ref-%d", i)
			if _, serr := m.Open(OpenRequest{Session: id}); serr != nil {
				errs <- fmt.Errorf("open %s: %w", id, serr)
				return
			}
			for w := 0; w < windows; w++ {
				rep, serr := m.Window(WindowRequest{
					Session: id, Seq: w, Steps: genOpts.WindowSteps,
					Events: GenWindow(genOpts, i, w, testInputLen),
				})
				if serr != nil {
					errs <- fmt.Errorf("session %d window %d: %w", i, w, serr)
					return
				}
				got[i] = append(got[i], rep.Logits)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	for i := range want {
		logitsEqual(t, fmt.Sprintf("session %d", i), got[i], want[i])
	}
}

// TestStreamHandleFrameRoundTrip exercises the frame-protocol dispatch the
// fleet connection uses: open, window, list, close, and the error path.
func TestStreamHandleFrameRoundTrip(t *testing.T) {
	m := newTestManager(t, testConfig(t))

	mustJSON := func(v any) []byte {
		buf, err := json.Marshal(v)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		return buf
	}

	typ, payload := m.HandleFrame(TypeOpen, mustJSON(OpenRequest{Session: "s"}))
	if typ != TypeOpened {
		t.Fatalf("open frame answered 0x%02x: %s", typ, payload)
	}
	typ, payload = m.HandleFrame(TypeWindow, mustJSON(WindowRequest{Session: "s", Steps: 4}))
	if typ != TypePred {
		t.Fatalf("window frame answered 0x%02x: %s", typ, payload)
	}
	typ, _ = m.HandleFrame(TypeList, nil)
	if typ != TypeListing {
		t.Fatalf("list frame answered 0x%02x", typ)
	}
	typ, payload = m.HandleFrame(TypeWindow, []byte("not json"))
	if typ != TypeError {
		t.Fatalf("garbage frame answered 0x%02x: %s", typ, payload)
	}
	typ, _ = m.HandleFrame(TypeClose, mustJSON(CloseRequest{Session: "s"}))
	if typ != TypeClosed {
		t.Fatalf("close frame answered 0x%02x", typ)
	}
	if m.Count() != 0 {
		t.Fatalf("close left %d sessions", m.Count())
	}
}
