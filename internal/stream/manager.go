package stream

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"skipper/internal/faults"
	"skipper/internal/layers"
	"skipper/internal/parallel"
	"skipper/internal/runstate"
	"skipper/internal/trace"
)

// Config parameterises a session Manager.
type Config struct {
	// Build constructs the serving architecture; each session owns a
	// private replica (layer scratch is not concurrency-safe).
	Build func() (*layers.Network, error)
	// Source returns the currently published weights and their checkpoint
	// generation; a session copies them once at open and is pinned to that
	// generation for its whole life.
	Source func() (*layers.Network, uint64)
	// Pool is the shared compute pool session forwards run on.
	Pool *parallel.Pool
	// Store, when non-nil, makes sessions durable: periodic snapshots, a
	// snapshot at eviction/shutdown, and open-time resume from disk.
	Store *runstate.SessionStore
	// TTL evicts a session idle longer than this (snapshotting it first
	// when durable). Zero means 5 minutes.
	TTL time.Duration
	// SnapshotEvery snapshots a durable session every N completed windows.
	// Zero means 8; negative disables periodic snapshots.
	SnapshotEvery int
	// SkipThreshold is the default activity gate: a window with at most
	// this many events takes the leak-only fast path. 0 (the default)
	// skips only empty windows — lossless; negative disables skipping.
	SkipThreshold int
	// MaxSessions bounds the live registry. Zero means 256.
	MaxSessions int
	// Clock abstracts time for TTL accounting. Nil means wall clock.
	Clock  faults.Clock
	Tracer *trace.Tracer
}

func (c Config) withDefaults() Config {
	if c.TTL <= 0 {
		c.TTL = 5 * time.Minute
	}
	if c.SnapshotEvery == 0 {
		c.SnapshotEvery = 8
	}
	if c.MaxSessions <= 0 {
		c.MaxSessions = 256
	}
	if c.Clock == nil {
		c.Clock = faults.Wall
	}
	return c
}

// Manager is the serve-side session registry: it owns every live Session,
// resolves the stream frame protocol, evicts idle sessions, and snapshots
// durable ones.
type Manager struct {
	cfg Config

	mu       sync.Mutex
	sessions map[string]*Session
	stopped  bool

	stop chan struct{}
	wg   sync.WaitGroup

	opened    atomic.Int64
	resumed   atomic.Int64
	imported  atomic.Int64
	exported  atomic.Int64
	evicted   atomic.Int64
	windows   atomic.Int64
	skipped   atomic.Int64
	quiet     atomic.Int64
	full      atomic.Int64
	snapshots atomic.Int64
	snapFails atomic.Int64
}

// NewManager validates the config and starts the eviction loop.
func NewManager(cfg Config) (*Manager, error) {
	if cfg.Build == nil || cfg.Source == nil {
		return nil, fmt.Errorf("stream: Config.Build and Config.Source are required")
	}
	m := &Manager{
		cfg:      cfg.withDefaults(),
		sessions: make(map[string]*Session),
		stop:     make(chan struct{}),
	}
	m.wg.Add(1)
	go m.evictLoop()
	return m, nil
}

// Count returns the number of live sessions.
func (m *Manager) Count() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.sessions)
}

// List returns the live session ids.
func (m *Manager) List() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	ids := make([]string, 0, len(m.sessions))
	for id := range m.sessions {
		ids = append(ids, id)
	}
	return ids
}

func (m *Manager) event(name string, attrs ...trace.Attr) {
	if m.cfg.Tracer != nil {
		m.cfg.Tracer.Event(trace.TrackStream, name, attrs...)
	}
}

// lookup fetches a live session, touching its activity stamp.
func (m *Manager) lookup(id string) (*Session, *Error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.stopped {
		return nil, errf(CodeShutdown, "session manager is shut down")
	}
	s, ok := m.sessions[id]
	if !ok {
		return nil, errf(CodeUnknownSession, "no live session %q", id)
	}
	return s, nil
}

// Open opens or resumes a session: live registry first, then the durable
// store, else a fresh session (unless the client requires resume).
func (m *Manager) Open(req OpenRequest) (OpenReply, *Error) {
	if !runstate.ValidSessionID(req.Session) {
		return OpenReply{}, errf(CodeBadRequest, "invalid session id %q", req.Session)
	}
	threshold := m.cfg.SkipThreshold
	if req.SkipThreshold != nil {
		threshold = *req.SkipThreshold
	}

	m.mu.Lock()
	if m.stopped {
		m.mu.Unlock()
		return OpenReply{}, errf(CodeShutdown, "session manager is shut down")
	}
	if s, ok := m.sessions[req.Session]; ok {
		m.mu.Unlock()
		s.mu.Lock()
		defer s.mu.Unlock()
		if s.sealed {
			return OpenReply{}, errf(CodeMoved, "session %s was exported to another replica", s.ID)
		}
		s.lastActive = m.cfg.Clock.Now()
		m.resumed.Add(1)
		m.event("stream_resume_live")
		return s.openReply(true), nil
	}
	if len(m.sessions) >= m.cfg.MaxSessions {
		m.mu.Unlock()
		return OpenReply{}, errf(CodeInternal, "session registry full (%d)", m.cfg.MaxSessions)
	}
	m.mu.Unlock()

	// Try the durable store before creating fresh state.
	if m.cfg.Store != nil && m.cfg.Store.Exists(req.Session) {
		rec, err := m.cfg.Store.Load(req.Session)
		if err != nil {
			return OpenReply{}, errf(CodeInternal, "loading session record: %v", err)
		}
		s, serr := m.install(rec)
		if serr != nil {
			return OpenReply{}, serr
		}
		m.resumed.Add(1)
		m.event("stream_resume_disk", trace.Attr{Key: "window", Val: int64(s.window)})
		return s.openReply(true), nil
	}
	if req.RequireResume {
		return OpenReply{}, errf(CodeUnknownSession, "session %q has no prior state to resume", req.Session)
	}

	s, err := newSession(m.cfg, req.Session, req.Seed, threshold)
	if err != nil {
		return OpenReply{}, errf(CodeInternal, "building session: %v", err)
	}
	if serr := m.add(s); serr != nil {
		return OpenReply{}, serr
	}
	m.opened.Add(1)
	m.event("stream_open")
	return s.openReply(false), nil
}

// install builds a session from a state record and registers it.
func (m *Manager) install(rec *runstate.SessionRecord) (*Session, *Error) {
	if rec.Meta.Batch != 1 {
		return nil, errf(CodeBadRequest, "session record batch %d unsupported", rec.Meta.Batch)
	}
	s, err := newSession(m.cfg, rec.Meta.ID, rec.Meta.Seed, rec.Meta.SkipThreshold)
	if err != nil {
		return nil, errf(CodeInternal, "building session: %v", err)
	}
	if serr := s.restore(rec); serr != nil {
		return nil, serr
	}
	if serr := m.add(s); serr != nil {
		return nil, serr
	}
	return s, nil
}

// add registers a freshly built session (losing the race to a concurrent
// open of the same id is an error: membrane state must never fork).
func (m *Manager) add(s *Session) *Error {
	s.lastActive = m.cfg.Clock.Now()
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.stopped {
		return errf(CodeShutdown, "session manager is shut down")
	}
	if _, dup := m.sessions[s.ID]; dup {
		return errf(CodeBadRequest, "session %q already live", s.ID)
	}
	if len(m.sessions) >= m.cfg.MaxSessions {
		return errf(CodeInternal, "session registry full (%d)", m.cfg.MaxSessions)
	}
	m.sessions[s.ID] = s
	return nil
}

// Window feeds one event window through its session.
func (m *Manager) Window(req WindowRequest) (WindowReply, *Error) {
	s, serr := m.lookup(req.Session)
	if serr != nil {
		return WindowReply{}, serr
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	q0, f0 := s.stream.QuietSteps, s.stream.FullSteps
	rep, serr := s.runWindow(req)
	if serr != nil {
		return WindowReply{}, serr
	}
	s.lastActive = m.cfg.Clock.Now()
	m.windows.Add(1)
	m.quiet.Add(s.stream.QuietSteps - q0)
	m.full.Add(s.stream.FullSteps - f0)
	if rep.Skipped {
		m.skipped.Add(1)
		m.event("stream_window_skipped", trace.Attr{Key: "steps", Val: int64(req.Steps)})
	}
	if m.cfg.Store != nil && m.cfg.SnapshotEvery > 0 && s.window%m.cfg.SnapshotEvery == 0 {
		m.snapshotLocked(s)
	}
	return rep, nil
}

// snapshotLocked persists a durable snapshot; failures are counted and
// traced but never kill the live session (the stream stays correct, it just
// loses crash durability back to the previous snapshot). Caller holds s.mu.
func (m *Manager) snapshotLocked(s *Session) {
	rec, err := s.record()
	if err == nil {
		err = m.cfg.Store.Save(rec)
	}
	if err != nil {
		m.snapFails.Add(1)
		m.event("stream_snapshot_fail")
		return
	}
	m.snapshots.Add(1)
	m.event("stream_snapshot", trace.Attr{Key: "window", Val: int64(s.window)})
}

// CloseSession ends a session, optionally snapshotting its final state.
func (m *Manager) CloseSession(req CloseRequest) (ClosedReply, *Error) {
	s, serr := m.lookup(req.Session)
	if serr != nil {
		return ClosedReply{}, serr
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if req.Snapshot && m.cfg.Store != nil {
		m.snapshotLocked(s)
	} else if m.cfg.Store != nil {
		// An explicit drop also clears any stale durable record so a later
		// open of the same id starts fresh.
		_ = m.cfg.Store.Remove(s.ID)
	}
	m.remove(s.ID)
	return ClosedReply{Session: s.ID, Window: s.window}, nil
}

func (m *Manager) remove(id string) {
	m.mu.Lock()
	delete(m.sessions, id)
	m.mu.Unlock()
}

// Export seals a session and returns its encoded state record for
// migration. The session atomically leaves the live registry — a window
// arriving after the export gets CodeMoved, never a stale answer — and its
// durable record (if any) is removed so a restart cannot resurrect the
// pre-migration state.
func (m *Manager) Export(id string) ([]byte, *Error) {
	s, serr := m.lookup(id)
	if serr != nil {
		return nil, serr
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.sealed {
		return nil, errf(CodeMoved, "session %s already exported", id)
	}
	rec, err := s.record()
	if err != nil {
		return nil, errf(CodeInternal, "capturing session: %v", err)
	}
	raw, err := rec.Encode()
	if err != nil {
		return nil, errf(CodeInternal, "encoding session: %v", err)
	}
	s.sealed = true
	m.remove(id)
	if m.cfg.Store != nil {
		_ = m.cfg.Store.Remove(id)
	}
	m.exported.Add(1)
	m.event("stream_export", trace.Attr{Key: "window", Val: int64(s.window)})
	return raw, nil
}

// Import installs an exported record as a live session on this replica.
func (m *Manager) Import(raw []byte) (ImportedReply, *Error) {
	rec, err := runstate.DecodeSession(raw)
	if err != nil {
		return ImportedReply{}, errf(CodeBadRequest, "decoding session record: %v", err)
	}
	if !runstate.ValidSessionID(rec.Meta.ID) {
		return ImportedReply{}, errf(CodeBadRequest, "invalid session id %q", rec.Meta.ID)
	}
	s, serr := m.install(rec)
	if serr != nil {
		return ImportedReply{}, serr
	}
	// Imported sessions become durable here immediately: if this replica
	// dies before the first periodic snapshot, the state must not be lost
	// (the exporter already discarded its copy).
	if m.cfg.Store != nil {
		s.mu.Lock()
		m.snapshotLocked(s)
		s.mu.Unlock()
	}
	m.imported.Add(1)
	m.event("stream_import", trace.Attr{Key: "window", Val: int64(s.window)})
	return ImportedReply{Session: s.ID, Window: s.window}, nil
}

// SnapshotAll persists every live durable session, returning how many were
// saved. Used at drain/shutdown.
func (m *Manager) SnapshotAll() int {
	if m.cfg.Store == nil {
		return 0
	}
	m.mu.Lock()
	all := make([]*Session, 0, len(m.sessions))
	for _, s := range m.sessions {
		all = append(all, s)
	}
	m.mu.Unlock()
	n := 0
	for _, s := range all {
		s.mu.Lock()
		before := m.snapshots.Load()
		m.snapshotLocked(s)
		if m.snapshots.Load() > before {
			n++
		}
		s.mu.Unlock()
	}
	return n
}

// WaitEmpty blocks until every live session has left (migrated or closed)
// or the context expires, reporting whether the registry emptied. Used by
// the drain path to give the router time to pull sessions away.
func (m *Manager) WaitEmpty(ctx context.Context) bool {
	for {
		if m.Count() == 0 {
			return true
		}
		select {
		case <-ctx.Done():
			return m.Count() == 0
		case <-time.After(20 * time.Millisecond):
		}
	}
}

// Shutdown stops the eviction loop, snapshots every remaining durable
// session, and refuses further requests.
func (m *Manager) Shutdown() {
	m.mu.Lock()
	if m.stopped {
		m.mu.Unlock()
		return
	}
	m.stopped = true
	m.mu.Unlock()
	close(m.stop)
	m.wg.Wait()
	// stopped blocks new opens/windows; in-flight windows hold session
	// locks, which SnapshotAll acquires, so every snapshot is a window
	// boundary.
	m.SnapshotAll()
}

func (m *Manager) evictLoop() {
	defer m.wg.Done()
	tick := m.cfg.TTL / 4
	if tick > time.Second {
		tick = time.Second
	}
	if tick < 10*time.Millisecond {
		tick = 10 * time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-m.stop:
			return
		case <-t.C:
			m.evictIdle()
		}
	}
}

func (m *Manager) evictIdle() {
	now := m.cfg.Clock.Now()
	m.mu.Lock()
	var idle []*Session
	for _, s := range m.sessions {
		if now.Sub(s.lastActive) > m.cfg.TTL {
			idle = append(idle, s)
		}
	}
	m.mu.Unlock()
	for _, s := range idle {
		s.mu.Lock()
		// Re-check under the session lock: a window may have landed since.
		if now.Sub(s.lastActive) > m.cfg.TTL && !s.sealed {
			if m.cfg.Store != nil {
				m.snapshotLocked(s)
			}
			m.remove(s.ID)
			m.evicted.Add(1)
			m.event("stream_evict", trace.Attr{Key: "window", Val: int64(s.window)})
		}
		s.mu.Unlock()
	}
}

// HandleFrame resolves one stream-protocol request to its reply frame — the
// pure request/response core that serve's fleet loop (plain or multiplexed)
// dispatches into.
func (m *Manager) HandleFrame(typ byte, payload []byte) (byte, []byte) {
	switch typ {
	case TypeOpen:
		var req OpenRequest
		if err := json.Unmarshal(payload, &req); err != nil {
			return errorFrame(errf(CodeBadRequest, "open: %v", err))
		}
		rep, serr := m.Open(req)
		if serr != nil {
			return errorFrame(serr)
		}
		return marshalFrame(TypeOpened, rep)
	case TypeWindow:
		var req WindowRequest
		if err := json.Unmarshal(payload, &req); err != nil {
			return errorFrame(errf(CodeBadRequest, "window: %v", err))
		}
		rep, serr := m.Window(req)
		if serr != nil {
			return errorFrame(serr)
		}
		return marshalFrame(TypePred, rep)
	case TypeClose:
		var req CloseRequest
		if err := json.Unmarshal(payload, &req); err != nil {
			return errorFrame(errf(CodeBadRequest, "close: %v", err))
		}
		rep, serr := m.CloseSession(req)
		if serr != nil {
			return errorFrame(serr)
		}
		return marshalFrame(TypeClosed, rep)
	case TypeExport:
		var req ExportRequest
		if err := json.Unmarshal(payload, &req); err != nil {
			return errorFrame(errf(CodeBadRequest, "export: %v", err))
		}
		raw, serr := m.Export(req.Session)
		if serr != nil {
			return errorFrame(serr)
		}
		return TypeState, raw
	case TypeImport:
		rep, serr := m.Import(payload)
		if serr != nil {
			return errorFrame(serr)
		}
		return marshalFrame(TypeImported, rep)
	case TypeList:
		return marshalFrame(TypeListing, ListingReply{Sessions: m.List()})
	default:
		return errorFrame(errf(CodeBadRequest, "unknown stream frame type 0x%02x", typ))
	}
}

func marshalFrame(typ byte, v any) (byte, []byte) {
	buf, err := json.Marshal(v)
	if err != nil {
		return errorFrame(errf(CodeInternal, "encoding reply: %v", err))
	}
	return typ, buf
}

func errorFrame(e *Error) (byte, []byte) {
	buf, _ := json.Marshal(ErrorReply{Code: e.Code, Error: e.Msg, Window: e.Window})
	return TypeError, buf
}

// RenderMetrics writes the manager's Prometheus-format counters (appended
// to serve's /metrics page).
func (m *Manager) RenderMetrics(w io.Writer) {
	g := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	c := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	g("skipper_stream_sessions_active", "Live streaming sessions.", int64(m.Count()))
	c("skipper_stream_sessions_opened_total", "Sessions created fresh.", m.opened.Load())
	c("skipper_stream_sessions_resumed_total", "Session opens that restored prior state.", m.resumed.Load())
	c("skipper_stream_sessions_imported_total", "Sessions imported from another replica.", m.imported.Load())
	c("skipper_stream_sessions_exported_total", "Sessions exported for migration.", m.exported.Load())
	c("skipper_stream_sessions_evicted_total", "Idle sessions evicted by TTL.", m.evicted.Load())
	c("skipper_stream_windows_total", "Event windows processed.", m.windows.Load())
	c("skipper_stream_windows_skipped_total", "Windows advanced by leak-only fast-forward.", m.skipped.Load())
	c("skipper_stream_steps_quiet_total", "Timesteps advanced by the leak-only fast path.", m.quiet.Load())
	c("skipper_stream_steps_full_total", "Timesteps advanced by the full forward.", m.full.Load())
	c("skipper_stream_snapshots_total", "Durable session snapshots written.", m.snapshots.Load())
	c("skipper_stream_snapshot_failures_total", "Session snapshot attempts that failed.", m.snapFails.Load())
}
