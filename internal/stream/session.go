package stream

import (
	"sync"
	"time"

	"skipper/internal/core"
	"skipper/internal/layers"
	"skipper/internal/runstate"
	"skipper/internal/tensor"
)

// maxWindowSteps bounds one window's timestep count; a streaming client
// wanting a longer horizon sends more windows.
const maxWindowSteps = 1024

// Session is one live streaming-inference session: a private network whose
// weights were pinned at open time (so a serve-side hot reload can never
// rewrite membrane semantics mid-stream), the rolling membrane state, and
// the window cursor. All window processing is serialised by mu.
type Session struct {
	ID string

	mu     sync.Mutex
	net    *layers.Network
	stream *core.StreamState
	seed   uint64
	// version is the checkpoint generation the weights were pinned at.
	version       uint64
	skipThreshold int
	inVolume      int
	classes       int

	// window is the next expected window sequence number.
	window         int
	windowsSkipped int64
	windowsTotal   int64

	lastActive time.Time
	// sealed marks a session exported away: the state left with the
	// record, so further windows must go to the importing replica.
	sealed bool
}

// newSession builds a session with a private replica of the architecture
// and copies the published weights into it (same builder ⇒ same parameter
// order and shapes; see the scratch-ownership note in serve/model.go for
// why the network must be private).
func newSession(cfg Config, id string, seed uint64, threshold int) (*Session, error) {
	net, err := cfg.Build()
	if err != nil {
		return nil, err
	}
	net.SetPool(cfg.Pool)
	src, ver := cfg.Source()
	dst, srcP := net.Params(), src.Params()
	for i := range dst {
		copy(dst[i].W.Data, srcP[i].W.Data)
	}
	return &Session{
		ID:            id,
		net:           net,
		stream:        core.NewStreamState(net, 1),
		seed:          seed,
		version:       ver,
		skipThreshold: threshold,
		inVolume:      tensor.Volume(net.InShape),
		classes:       net.OutShape()[0],
	}, nil
}

// openReply renders the session's resume coordinates. Callers hold s.mu or
// have exclusive access.
func (s *Session) openReply(resumed bool) OpenReply {
	return OpenReply{
		Session:       s.ID,
		Resumed:       resumed,
		Window:        s.window,
		Steps:         s.stream.Steps(),
		Seed:          s.seed,
		InputLen:      s.inVolume,
		Classes:       s.classes,
		SkipThreshold: s.skipThreshold,
		ModelVersion:  s.version,
	}
}

// runWindow advances the session through one event window. The caller holds
// s.mu.
func (s *Session) runWindow(req WindowRequest) (WindowReply, *Error) {
	if s.sealed {
		return WindowReply{}, errf(CodeMoved, "session %s was exported to another replica", s.ID)
	}
	if req.Steps <= 0 || req.Steps > maxWindowSteps {
		return WindowReply{}, errf(CodeBadRequest, "window steps %d out of range [1,%d]", req.Steps, maxWindowSteps)
	}
	if len(req.Events)%2 != 0 {
		return WindowReply{}, errf(CodeBadRequest, "events must be (t, idx) pairs, got %d entries", len(req.Events))
	}
	if req.Seq != s.window {
		e := errf(CodeBadSeq, "window seq %d, session cursor %d", req.Seq, s.window)
		e.Window = s.window
		return WindowReply{}, e
	}
	for i := 0; i < len(req.Events); i += 2 {
		if int(req.Events[i]) >= req.Steps {
			return WindowReply{}, errf(CodeBadRequest, "event t %d outside window of %d steps", req.Events[i], req.Steps)
		}
		if int(req.Events[i+1]) >= s.inVolume {
			return WindowReply{}, errf(CodeBadRequest, "event index %d outside input volume %d", req.Events[i+1], s.inVolume)
		}
	}

	// SAM-style activity gate, applied online: a window whose event count
	// is at or below the threshold advances by leak-only decay. At the
	// default threshold 0 only truly empty windows skip, so no event is
	// ever dropped and the gate is lossless; positive thresholds drop
	// sub-threshold windows' events (the paper's lossy skip, opt-in).
	skipped := s.skipThreshold >= 0 && len(req.Events)/2 <= s.skipThreshold
	if skipped {
		for t := 0; t < req.Steps; t++ {
			s.stream.StepQuiet()
		}
	} else {
		x := tensor.New(append([]int{1}, s.net.InShape...)...)
		for t := 0; t < req.Steps; t++ {
			x.Zero()
			any := false
			for i := 0; i < len(req.Events); i += 2 {
				if int(req.Events[i]) == t {
					x.Data[req.Events[i+1]] += 1
					any = true
				}
			}
			if any {
				s.stream.StepInput(x)
			} else {
				// An event-free timestep inside a busy window takes the
				// quiet path too — bitwise identical to stepping the zero
				// tensor, just cheaper.
				s.stream.StepQuiet()
			}
		}
	}

	s.window++
	s.windowsTotal++
	if skipped {
		s.windowsSkipped++
	}
	logits := s.stream.Logits()
	out := make([]float32, logits.Len())
	copy(out, logits.Data)
	return WindowReply{
		Session: s.ID,
		Seq:     req.Seq,
		Pred:    argmax(out),
		Logits:  out,
		Skipped: skipped,
		Steps:   s.stream.Steps(),
	}, nil
}

// record captures the session as a durable/portable state record. The
// caller holds s.mu.
func (s *Session) record() (*runstate.SessionRecord, error) {
	return runstate.NewSessionRecord(runstate.SessionMeta{
		ID:             s.ID,
		Window:         s.window,
		Steps:          s.stream.Steps(),
		Batch:          1,
		Seed:           s.seed,
		SkipThreshold:  s.skipThreshold,
		ModelVersion:   s.version,
		WindowsSkipped: s.windowsSkipped,
		WindowsTotal:   s.windowsTotal,
	}, s.stream.Capture())
}

// restore installs a state record into a freshly built session, validating
// every tensor against the live architecture's layer shapes — a mismatched
// checkpoint is refused, never grafted onto the stream.
func (s *Session) restore(r *runstate.SessionRecord) *Error {
	states, err := r.States()
	if err != nil {
		return errf(CodeInternal, "decoding session state: %v", err)
	}
	if err := s.stream.Restore(states, r.Meta.Steps); err != nil {
		return errf(CodeBadRequest, "session state does not fit the serving model: %v", err)
	}
	s.window = r.Meta.Window
	s.seed = r.Meta.Seed
	s.skipThreshold = r.Meta.SkipThreshold
	s.windowsSkipped = r.Meta.WindowsSkipped
	s.windowsTotal = r.Meta.WindowsTotal
	return nil
}

func argmax(xs []float32) int {
	best := 0
	for i, v := range xs {
		if v > xs[best] {
			best = i
		}
	}
	return best
}
