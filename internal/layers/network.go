package layers

import (
	"fmt"

	"skipper/internal/parallel"
	"skipper/internal/tensor"
)

// Network is a feed-forward stack of layers unrolled in time by the training
// engine. It provides the single-timestep forward and backward primitives
// that every training strategy (BPTT, checkpointing, Skipper, TBPTT,
// TBPTT-LBP) composes.
type Network struct {
	Name    string
	InShape []int // per-sample input shape [C,H,W]
	Layers  []Layer

	outShape  []int
	built     bool
	pool      *parallel.Pool
	spikePack bool
}

// PoolAware is implemented by layers whose kernels run on the parallel
// compute pool. Network.SetPool fans the pool out to them; a layer never
// owning a pool (nil) runs its kernels serially, which is always
// bit-identical to any pool size.
type PoolAware interface {
	SetPool(*parallel.Pool)
}

// SetPool hands every pool-aware layer the shared compute pool. Call once
// after Build (and again after a pool change); a nil pool reverts the
// network to serial kernels. Results are bit-identical either way.
func (n *Network) SetPool(p *parallel.Pool) {
	n.pool = p
	for _, l := range n.Layers {
		if pa, ok := l.(PoolAware); ok {
			pa.SetPool(p)
		}
	}
}

// Pool returns the compute pool the network's layers run on (nil = serial).
func (n *Network) Pool() *parallel.Pool { return n.pool }

// SetSpikePack turns bit-packed spike compute on or off for the whole stack,
// fanning the flag out to every SpikePackAware layer (mirroring SetPool).
// With it on, spiking layers publish packed activation views and the
// forward/backward steps route through the AND+popcount gather kernels —
// bit-identical to the dense float path at any pool width.
func (n *Network) SetSpikePack(on bool) {
	n.spikePack = on
	for _, l := range n.Layers {
		if sa, ok := l.(SpikePackAware); ok {
			sa.SetSpikePack(on)
		}
	}
}

// SpikePack reports whether bit-packed spike compute is on.
func (n *Network) SpikePack() bool { return n.spikePack }

// NewNetwork assembles an unbuilt network from layers.
func NewNetwork(name string, inShape []int, ls ...Layer) *Network {
	return &Network{Name: name, InShape: append([]int(nil), inShape...), Layers: ls}
}

// Build wires up all layer shapes and initialises parameters from rng.
func (n *Network) Build(rng *tensor.RNG) error {
	shape := n.InShape
	for i, l := range n.Layers {
		out, err := l.Build(shape, rng.Derive(uint64(i)))
		if err != nil {
			return fmt.Errorf("layers: building %s layer %d (%s): %w", n.Name, i, l.Name(), err)
		}
		shape = out
	}
	n.outShape = shape
	n.built = true
	return nil
}

// OutShape returns the per-sample output shape (typically [classes]).
func (n *Network) OutShape() []int {
	n.mustBuilt()
	return n.outShape
}

func (n *Network) mustBuilt() {
	if !n.built {
		panic("layers: network used before Build")
	}
}

// Params returns all trainable parameters in layer order.
func (n *Network) Params() []Param {
	var ps []Param
	for _, l := range n.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// ParamCount returns the total number of trainable scalars.
func (n *Network) ParamCount() int {
	c := 0
	for _, p := range n.Params() {
		c += p.W.Len()
	}
	return c
}

// ParamBytes returns the weight footprint in bytes.
func (n *Network) ParamBytes() int64 {
	var b int64
	for _, p := range n.Params() {
		b += p.W.Bytes()
	}
	return b
}

// ZeroGrads clears all parameter gradients.
func (n *Network) ZeroGrads() {
	for _, p := range n.Params() {
		p.G.Zero()
	}
}

// BufferedLayer is implemented by layers holding persistent non-trainable
// buffers (batch-norm running statistics) that are not part of Params but
// must survive a checkpoint/resume cycle.
type BufferedLayer interface {
	// Buffers returns the live buffers (aliased, not copied).
	Buffers() []tensor.Named
}

// Buffers returns all persistent non-trainable tensors in layer order.
func (n *Network) Buffers() []tensor.Named {
	var bs []tensor.Named
	for _, l := range n.Layers {
		if bl, ok := l.(BufferedLayer); ok {
			bs = append(bs, bl.Buffers()...)
		}
	}
	return bs
}

// StatefulCount returns L_n: the number of membrane-carrying layers
// (residual blocks count their two LIF stages). This is the L_n in the
// paper's T/C > L_n constraint and Eq. 7.
func (n *Network) StatefulCount() int {
	c := 0
	for _, l := range n.Layers {
		if !l.Stateful() {
			continue
		}
		if rb, ok := l.(*ResidualBlock); ok {
			_ = rb
			c += 2
			continue
		}
		c++
	}
	return c
}

// BeginIteration re-samples per-iteration randomness (dropout masks).
func (n *Network) BeginIteration(rng *tensor.RNG) {
	for i, l := range n.Layers {
		if il, ok := l.(IterationLayer); ok {
			il.BeginIteration(rng.Derive(uint64(i)))
		}
	}
}

// EndIteration switches per-iteration layers back to evaluation behaviour.
func (n *Network) EndIteration() {
	for _, l := range n.Layers {
		if e, ok := l.(interface{ EndIteration() }); ok {
			e.EndIteration()
		}
	}
}

// BeginRecompute marks the start of a checkpoint replay: layers with
// first-pass-only side effects (batch-norm running statistics) freeze them.
func (n *Network) BeginRecompute() { n.setRecompute(true) }

// EndRecompute marks the end of a checkpoint replay.
func (n *Network) EndRecompute() { n.setRecompute(false) }

func (n *Network) setRecompute(on bool) {
	for _, l := range n.Layers {
		if r, ok := l.(RecomputeAware); ok {
			r.SetRecompute(on)
		}
	}
}

// ForwardStep advances the whole stack one timestep. x is the input spikes
// [B, InShape...]; prev is the per-layer state at t−1 (nil at t = 0).
// The returned slice has one state per layer.
func (n *Network) ForwardStep(x *tensor.Tensor, prev []*LayerState) []*LayerState {
	n.mustBuilt()
	states := make([]*LayerState, len(n.Layers))
	cur := x
	var curP *tensor.PackedSpikes
	if n.spikePack {
		// Pack the network input too when it is binary (rate/latency-coded
		// spikes); a non-binary input simply leaves the first layer dense.
		curP, _ = tensor.PackSpikes(x)
	}
	for i, l := range n.Layers {
		var p *LayerState
		if prev != nil {
			p = prev[i]
		}
		var st *LayerState
		if pf, ok := l.(PackedForward); ok && curP != nil {
			st = pf.ForwardPacked(cur, curP, p)
		} else {
			st = l.Forward(cur, p)
		}
		states[i] = st
		// The packed chain flows only through layers publishing packed
		// outputs; anything else (pools, dropout, norm) drops back to dense.
		cur, curP = st.O, st.OPacked
	}
	return states
}

// Logits returns the readout output of the final layer for a timestep's
// states.
func (n *Network) Logits(states []*LayerState) *tensor.Tensor {
	return states[len(states)-1].DenseO()
}

// SpikeSum returns s_t = Σ_l sum(o_t^l) over all layers for one timestep's
// states (paper Eq. 4). The readout layer is excluded: its "output" is a
// membrane potential, not spikes.
func (n *Network) SpikeSum(states []*LayerState) float64 {
	var s float64
	for i, st := range states {
		if lin, ok := n.Layers[i].(*SpikingLinear); ok && lin.Readout {
			continue
		}
		s += st.SpikeSum()
	}
	return s
}

// BackwardStep runs one timestep of the δ recursion from the top of the
// stack to the bottom. x and states are the input and records at time t.
// gradsAt injects external ∂L/∂o_t gradients by layer index (the final
// layer's entry is the loss gradient; TBPTT-LBP adds local-classifier
// entries at interior layers). deltas carries δ_{t+1} per layer (nil at the
// last computed timestep) and the replacement δ_t slice is returned.
func (n *Network) BackwardStep(x *tensor.Tensor, states []*LayerState, gradsAt map[int]*tensor.Tensor, deltas []*Delta) []*Delta {
	n.mustBuilt()
	if len(states) != len(n.Layers) {
		panic(fmt.Sprintf("layers: BackwardStep got %d states for %d layers", len(states), len(n.Layers)))
	}
	newDeltas := make([]*Delta, len(n.Layers))
	var gradFlow *tensor.Tensor
	for i := len(n.Layers) - 1; i >= 0; i-- {
		l := n.Layers[i]
		gradOut := gradFlow
		if inj := gradsAt[i]; inj != nil {
			if gradOut == nil {
				gradOut = inj.Clone()
			} else {
				tensor.AXPY(gradOut, 1, inj)
			}
		}
		if gradOut == nil {
			gradOut = tensor.New(states[i].OutShape()...)
		}
		var din *Delta
		if deltas != nil {
			din = deltas[i]
		}
		var prevPacked *tensor.PackedSpikes
		if i > 0 {
			prevPacked = states[i-1].OPacked
		}
		var gradIn *tensor.Tensor
		var dout *Delta
		if pb, ok := l.(PackedBackward); ok && prevPacked != nil {
			// The input spikes stay packed; a lazily materialised boundary
			// record is consumed without ever expanding to dense.
			gradIn, dout = pb.BackwardPacked(prevPacked, states[i], gradOut, din)
		} else {
			input := x
			if i > 0 {
				input = states[i-1].DenseO()
			}
			gradIn, dout = l.Backward(input, states[i], gradOut, din)
		}
		newDeltas[i] = dout
		gradFlow = gradIn
	}
	return newDeltas
}

// RecordBytes returns the activation bytes of one stored timestep for a
// batch of the given size — the unit the paper's memory model is built from.
func (n *Network) RecordBytes(batch int) int64 {
	var b int64
	for _, l := range n.Layers {
		b += l.StateBytes(batch)
	}
	return b
}

// WorkspaceBytes returns the peak transient scratch requirement.
func (n *Network) WorkspaceBytes(batch int) int64 {
	var m int64
	for _, l := range n.Layers {
		if w := l.WorkspaceBytes(batch); w > m {
			m = w
		}
	}
	return m
}

// Summary renders a one-line-per-layer description of the built network.
func (n *Network) Summary() string {
	n.mustBuilt()
	s := fmt.Sprintf("%s: in=%v params=%d L_n=%d\n", n.Name, n.InShape, n.ParamCount(), n.StatefulCount())
	shape := n.InShape
	for i, l := range n.Layers {
		nextShape := layerOutShape(l, shape)
		s += fmt.Sprintf("  %2d %-18s %v -> %v\n", i, l.Name(), shape, nextShape)
		shape = nextShape
	}
	return s
}

// layerOutShape recovers a built layer's output shape for reporting.
func layerOutShape(l Layer, in []int) []int {
	switch v := l.(type) {
	case *SpikingConv2D:
		return v.outShape
	case *SpikingLinear:
		return []int{v.Out}
	case *AvgPool2D:
		return v.outShape
	case *MaxPool2D:
		return v.outShape
	case *GlobalAvgPool:
		return []int{v.inShape[0]}
	case *ResidualBlock:
		return v.outShape
	case *Dropout:
		return in
	default:
		return in
	}
}
