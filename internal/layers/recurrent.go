package layers

import (
	"fmt"

	"skipper/internal/parallel"
	"skipper/internal/snn"
	"skipper/internal/tensor"
)

// RecurrentSpikingLinear is a fully-connected LIF layer with explicit
// lateral recurrence: the synaptic current at time t is
//
//	I_t = W·x_t + W_rec·o_{t-1}
//
// — the general recurrent-SNN case the paper's Eq. 1 specialises (its reset
// term is a diagonal self-recurrence). The temporal checkpointing and
// skipping machinery applies unchanged because the layer's state record is
// still (U_t, o_t) and its forward is a pure function of (x_t, state_{t-1}).
//
// The backward pass extends the δ recursion of Eq. 2 with the recurrent
// credit path: o_t influences U_{t+1} through W_rec, so
//
//	∂L/∂o_t = gradOut_t + W_recᵀ·δ_{t+1}
//	δ_t     = σ'(U_t) ⊙ ∂L/∂o_t + λ·δ_{t+1}
//	∂W_rec += δ_{t+1} ⊗ o_t
type RecurrentSpikingLinear struct {
	Out       int
	Neuron    snn.Params
	Surrogate snn.Surrogate
	Label     string

	weight, recWeight, bias *tensor.Tensor
	gradW, gradRec, gradB   *tensor.Tensor
	inShape                 []int
	inFeatures              int
	pool                    *parallel.Pool
	spikePack               bool
}

// SetPool implements PoolAware.
func (l *RecurrentSpikingLinear) SetPool(p *parallel.Pool) { l.pool = p }

// SetSpikePack implements SpikePackAware.
func (l *RecurrentSpikingLinear) SetSpikePack(on bool) { l.spikePack = on }

// NewRecurrentSpikingLinear returns an unbuilt recurrent spiking layer.
func NewRecurrentSpikingLinear(label string, out int, neuron snn.Params, surr snn.Surrogate) *RecurrentSpikingLinear {
	return &RecurrentSpikingLinear{Out: out, Neuron: neuron, Surrogate: surr, Label: label}
}

// Name implements Layer.
func (l *RecurrentSpikingLinear) Name() string { return l.Label }

// Stateful implements Layer.
func (l *RecurrentSpikingLinear) Stateful() bool { return true }

// Build implements Layer.
func (l *RecurrentSpikingLinear) Build(inShape []int, rng *tensor.RNG) ([]int, error) {
	if err := l.Neuron.Validate(); err != nil {
		return nil, fmt.Errorf("layers: %s: %w", l.Label, err)
	}
	if l.Surrogate == nil {
		return nil, fmt.Errorf("layers: %s needs a surrogate gradient", l.Label)
	}
	l.inShape = append([]int(nil), inShape...)
	l.inFeatures = shapeVolume(inShape)
	l.weight = tensor.New(l.Out, l.inFeatures)
	l.recWeight = tensor.New(l.Out, l.Out)
	l.bias = tensor.New(l.Out)
	l.gradW = tensor.New(l.Out, l.inFeatures)
	l.gradRec = tensor.New(l.Out, l.Out)
	l.gradB = tensor.New(l.Out)
	rng.KaimingLinear(l.weight)
	// Lateral weights start small so the recurrence does not destabilise
	// the membrane at initialisation.
	rng.FillNorm(l.recWeight, 0, 0.5/float32(l.Out))
	return []int{l.Out}, nil
}

// Params implements Layer.
func (l *RecurrentSpikingLinear) Params() []Param {
	return []Param{
		{Name: l.Label + ".weight", W: l.weight, G: l.gradW},
		{Name: l.Label + ".recurrent", W: l.recWeight, G: l.gradRec},
		{Name: l.Label + ".bias", W: l.bias, G: l.gradB},
	}
}

func (l *RecurrentSpikingLinear) flatten(x *tensor.Tensor) *tensor.Tensor {
	if x.Rank() == 2 {
		return x
	}
	return x.Reshape(x.Dim(0), l.inFeatures)
}

// Forward implements Layer.
func (l *RecurrentSpikingLinear) Forward(x *tensor.Tensor, prev *LayerState) *LayerState {
	xf := l.flatten(x)
	b := xf.Dim(0)
	u := tensor.New(b, l.Out)
	tensor.MatMulTransB(l.pool, u, xf, l.weight)
	tensor.AddRowBias(u, l.bias)
	return l.fire(u, prev, b)
}

// ForwardPacked implements PackedForward: both the feed-forward current and
// the lateral recurrence gather straight from spike bits.
func (l *RecurrentSpikingLinear) ForwardPacked(_ *tensor.Tensor, xp *tensor.PackedSpikes, prev *LayerState) *LayerState {
	b := xp.Shape()[0]
	u := tensor.New(b, l.Out)
	tensor.MatMulTransBPacked(l.pool, u, xp, l.weight)
	tensor.AddRowBias(u, l.bias)
	return l.fire(u, prev, b)
}

// fire folds in the lateral recurrence and the leak/reset step. The previous
// state's spikes may be dense or packed (a lazy checkpoint record); both
// recurrence kernels are bit-identical.
func (l *RecurrentSpikingLinear) fire(u *tensor.Tensor, prev *LayerState, b int) *LayerState {
	if prev != nil {
		rec := tensor.New(b, l.Out)
		if prev.O != nil {
			tensor.MatMulTransB(l.pool, rec, prev.O, l.recWeight)
		} else {
			tensor.MatMulTransBPacked(l.pool, rec, prev.OPacked, l.recWeight)
		}
		tensor.AXPY(u, 1, rec)
	}
	o := tensor.New(b, l.Out)
	stepLIFPrev(l.pool, u, o, prev, l.Neuron)
	st := &LayerState{U: u, O: o}
	if l.spikePack {
		packOutput(st, o)
	}
	return st
}

// Backward implements Layer.
func (l *RecurrentSpikingLinear) Backward(x *tensor.Tensor, st *LayerState, gradOut *tensor.Tensor, deltaIn *Delta) (*tensor.Tensor, *Delta) {
	xf := l.flatten(x)
	b := xf.Dim(0)
	delta := l.deltaStep(st, gradOut, deltaIn, b)
	gradFlat := tensor.New(b, l.inFeatures)
	tensor.MatMul(l.pool, gradFlat, delta, l.weight)
	tensor.MatMulTransAAcc(l.pool, l.gradW, delta, xf)
	tensor.SumPerColumn(l.gradB, delta)
	return gradFlat.Reshape(x.Shape()...), &Delta{D: delta}
}

// BackwardPacked implements PackedBackward: the layer input feeds only the
// feed-forward weight gradient, which the packed kernel accumulates
// bit-identically from the spike bits.
func (l *RecurrentSpikingLinear) BackwardPacked(xp *tensor.PackedSpikes, st *LayerState, gradOut *tensor.Tensor, deltaIn *Delta) (*tensor.Tensor, *Delta) {
	b := xp.Shape()[0]
	delta := l.deltaStep(st, gradOut, deltaIn, b)
	gradFlat := tensor.New(b, l.inFeatures)
	tensor.MatMul(l.pool, gradFlat, delta, l.weight)
	tensor.MatMulTransAPackedAcc(l.pool, l.gradW, delta, xp)
	tensor.SumPerColumn(l.gradB, delta)
	return gradFlat.Reshape(xp.Shape()...), &Delta{D: delta}
}

// deltaStep computes δ_t from the stored state, folding in the lateral
// credit from t+1 and accumulating ∂W_rec. The stored spikes o_t may be
// dense or packed (lazy boundary record).
func (l *RecurrentSpikingLinear) deltaStep(st *LayerState, gradOut *tensor.Tensor, deltaIn *Delta, b int) *tensor.Tensor {
	// Total ∂L/∂o_t: the downstream gradient plus the lateral credit from
	// t+1 (δ_{t+1} entered U_{t+1} through W_rec·o_t).
	gradO := gradOut.Clone()
	var next *tensor.Tensor
	if deltaIn != nil && deltaIn.D != nil {
		next = deltaIn.D
		lat := tensor.New(b, l.Out)
		tensor.MatMul(l.pool, lat, next, l.recWeight)
		tensor.AXPY(gradO, 1, lat)
		// ∂W_rec += δ_{t+1}ᵀ · o_t
		if st.O != nil {
			tensor.MatMulTransAAcc(l.pool, l.gradRec, next, st.O)
		} else {
			tensor.MatMulTransAPackedAcc(l.pool, l.gradRec, next, st.OPacked)
		}
	}
	delta := tensor.New(b, l.Out)
	snn.SurrogateDelta(l.pool, delta, st.U, gradO, next, l.Neuron.Threshold, l.Neuron.Leak, l.Surrogate)
	return delta
}

// StateBytes implements Layer.
func (l *RecurrentSpikingLinear) StateBytes(batch int) int64 {
	return 2 * 4 * int64(batch) * int64(l.Out)
}

// WorkspaceBytes implements Layer.
func (l *RecurrentSpikingLinear) WorkspaceBytes(int) int64 { return 0 }
