package layers

import (
	"skipper/internal/tensor"
)

// QuietState is the leak-only fast-forward for all-zero input timesteps —
// the paper's time-skipping applied online. A quiet window of an event
// stream contributes no synaptic input, so the only work a timestep really
// needs is the membrane recurrence U_t = λ·U_{t−1} + I_bias − θ·o_{t−1};
// the synaptic current I_bias (the bias term pushed through the layer's
// kernel on a zero input) is the same every quiet step and is therefore
// computed once, by the layer's real kernel, and replayed from cache.
//
// Because the cached current carries the exact float bits a full forward on
// a zero tensor would have produced, and the recurrence reuses the layers'
// own fire paths, a quiet step is bitwise identical to
// Network.ForwardStep(zero, prev) by construction — the guarantee the
// stream-serving skip path is gated on.
type QuietState struct {
	net   *Network
	batch int
	// inShapes[i] is the per-sample input shape of layer i.
	inShapes [][]int
	// currents[i] caches layer i's zero-input synaptic current, computed
	// lazily the first time the quiet chain reaches layer i.
	currents []*tensor.Tensor
	// zeroIns[i] caches an all-zero input tensor for pass-through layers
	// and for the cache-filling kernel runs.
	zeroIns   []*tensor.Tensor
	supported bool
}

// NewQuietState prepares the fast path for one network at a fixed batch
// size. Supported reports false when the stack contains layers whose quiet
// behaviour is not modelled here (batch norm, residual blocks, recurrent
// cells) or when spike-pack mode is on; callers then fall back to a full
// zero-input ForwardStep, which is always correct, just slower.
func NewQuietState(net *Network, batch int) *QuietState {
	net.mustBuilt()
	q := &QuietState{
		net:       net,
		batch:     batch,
		inShapes:  make([][]int, len(net.Layers)),
		currents:  make([]*tensor.Tensor, len(net.Layers)),
		zeroIns:   make([]*tensor.Tensor, len(net.Layers)),
		supported: !net.spikePack,
	}
	in := net.InShape
	for i, l := range net.Layers {
		q.inShapes[i] = append([]int(nil), in...)
		switch l.(type) {
		case *SpikingConv2D, *SpikingLinear, *AvgPool2D, *GlobalAvgPool, *MaxPool2D, *Dropout:
		default:
			q.supported = false
		}
		in = layerOutShape(l, in)
	}
	return q
}

// Supported reports whether the quiet fast path covers this network.
func (q *QuietState) Supported() bool { return q.supported }

// Invalidate drops the cached zero-input currents. Call after the network's
// weights change (checkpoint reload) so the cache is rebuilt from the new
// biases.
func (q *QuietState) Invalidate() {
	for i := range q.currents {
		q.currents[i] = nil
	}
}

func (q *QuietState) zeroIn(i int) *tensor.Tensor {
	if q.zeroIns[i] == nil {
		q.zeroIns[i] = tensor.New(append([]int{q.batch}, q.inShapes[i]...)...)
	}
	return q.zeroIns[i]
}

// current returns layer i's cached zero-input synaptic current, filling the
// cache through the layer's real kernel so every later reuse carries the
// exact bits of a full forward on a zero tensor.
func (q *QuietState) current(i int, compute func(zero *tensor.Tensor) *tensor.Tensor) *tensor.Tensor {
	if q.currents[i] == nil {
		q.currents[i] = compute(q.zeroIn(i))
	}
	return q.currents[i]
}

// Step advances the whole stack one timestep under an all-zero input
// without re-running the synaptic kernels for layers whose input is still
// quiet. Bias-driven spikes deeper in the stack are handled exactly: after
// each spiking layer the output is scanned, and the first non-zero output
// switches the remainder of the stack back to the normal Forward chain.
// Returns (nil, false) when the network is unsupported.
func (q *QuietState) Step(prev []*LayerState) ([]*LayerState, bool) {
	if !q.supported || q.net.spikePack {
		return nil, false
	}
	n := q.net
	states := make([]*LayerState, len(n.Layers))
	// cur == nil means "the input to the next layer is known all-zero";
	// once any layer emits a spike the rest of the stack runs normally.
	var cur *tensor.Tensor
	for i, l := range n.Layers {
		var p *LayerState
		if prev != nil {
			p = prev[i]
		}
		var st *LayerState
		if cur != nil {
			st = l.Forward(cur, p)
		} else {
			switch v := l.(type) {
			case *SpikingConv2D:
				u := q.current(i, func(zero *tensor.Tensor) *tensor.Tensor {
					u := tensor.New(q.batch, v.outShape[0], v.outShape[1], v.outShape[2])
					tensor.Conv2D(v.pool, u, zero, v.weight, v.bias, v.Spec, v.scratch)
					return u
				}).Clone()
				st = v.fire(u, p, q.batch)
			case *SpikingLinear:
				u := q.current(i, func(zero *tensor.Tensor) *tensor.Tensor {
					u := tensor.New(q.batch, v.Out)
					tensor.MatMulTransB(v.pool, u, v.flatten(zero), v.weight)
					tensor.AddRowBias(u, v.bias)
					return u
				}).Clone()
				st = v.fire(u, p, q.batch)
			default:
				// Stateless shape transforms (pools, dropout): zero in means
				// zero out, but the record (max-pool argmax planes, shapes)
				// must match a full forward exactly, so run the real kernel
				// on a real zero tensor.
				st = l.Forward(q.zeroIn(i), p)
			}
		}
		states[i] = st
		if i == len(n.Layers)-1 {
			break
		}
		if cur != nil || !allZero(st.O) {
			cur = st.O
		}
	}
	return states, true
}

func allZero(t *tensor.Tensor) bool {
	if t == nil {
		return true
	}
	for _, v := range t.Data {
		if v != 0 {
			return false
		}
	}
	return true
}

// OutShapes returns each layer's per-sample output shape in order — the
// shape contract a restored session state must satisfy.
func (n *Network) OutShapes() [][]int {
	n.mustBuilt()
	shapes := make([][]int, len(n.Layers))
	in := n.InShape
	for i, l := range n.Layers {
		out := layerOutShape(l, in)
		shapes[i] = append([]int(nil), out...)
		in = out
	}
	return shapes
}
