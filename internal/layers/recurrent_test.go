package layers

import (
	"math"
	"testing"

	"skipper/internal/snn"
	"skipper/internal/tensor"
)

func buildRecurrent(t *testing.T) *RecurrentSpikingLinear {
	t.Helper()
	l := NewRecurrentSpikingLinear("rec", 5, snn.Params{Leak: 0.9, Threshold: 0.8}, snn.FastSigmoid{})
	if _, err := l.Build([]int{7}, tensor.NewRNG(11)); err != nil {
		t.Fatal(err)
	}
	return l
}

func TestRecurrentBuildAndParams(t *testing.T) {
	l := buildRecurrent(t)
	ps := l.Params()
	if len(ps) != 3 {
		t.Fatalf("params = %d, want 3 (W, W_rec, b)", len(ps))
	}
	if ps[1].W.Dim(0) != 5 || ps[1].W.Dim(1) != 5 {
		t.Fatalf("recurrent weight shape %v", ps[1].W.Shape())
	}
	bad := NewRecurrentSpikingLinear("r", 4, snn.Params{Leak: 0.9, Threshold: 1}, nil)
	if _, err := bad.Build([]int{4}, tensor.NewRNG(1)); err == nil {
		t.Fatal("missing surrogate must fail Build")
	}
}

func TestRecurrentForwardUsesLateralInput(t *testing.T) {
	l := buildRecurrent(t)
	r := tensor.NewRNG(12)
	x := tensor.New(2, 7)
	r.FillUniform(x, 0, 2)
	st1 := l.Forward(x, nil)
	// Force a distinctive previous spike pattern and confirm the membrane
	// responds to it through W_rec.
	st1.O.Fill(1)
	withRec := l.Forward(x, st1)
	st1.O.Zero()
	st1.U.Zero()
	withoutRec := l.Forward(x, st1)
	same := true
	for i := range withRec.U.Data {
		if withRec.U.Data[i] != withoutRec.U.Data[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("lateral recurrence had no effect on the membrane")
	}
}

// The lateral credit path: with a non-nil deltaIn, the recurrent weight
// gradient must accumulate δ_{t+1} ⊗ o_t exactly.
func TestRecurrentLateralGradient(t *testing.T) {
	l := buildRecurrent(t)
	r := tensor.NewRNG(13)
	x := tensor.New(2, 7)
	r.FillUniform(x, 0, 2)
	st := l.Forward(x, nil)
	st.O.Fill(1) // make the outer product easy to verify

	din := &Delta{D: tensor.New(2, 5)}
	r.FillNorm(din.D, 0, 1)
	g := tensor.New(2, 5)

	for _, p := range l.Params() {
		p.G.Zero()
	}
	l.Backward(x, st, g, din)
	// ∂W_rec[i][j] = Σ_batch δ_{t+1}[b][i] · o_t[b][j]; with o ≡ 1 every
	// column equals the per-unit batch sum of δ.
	for i := 0; i < 5; i++ {
		var want float32
		for b := 0; b < 2; b++ {
			want += din.D.At(b, i)
		}
		for j := 0; j < 5; j++ {
			if math.Abs(float64(l.gradRec.At(i, j)-want)) > 1e-5 {
				t.Fatalf("gradRec[%d][%d] = %v, want %v", i, j, l.gradRec.At(i, j), want)
			}
		}
	}
	// Without deltaIn, the lateral gradient must stay zero.
	for _, p := range l.Params() {
		p.G.Zero()
	}
	l.Backward(x, st, g, nil)
	if tensor.Norm2(l.gradRec) != 0 {
		t.Fatal("gradRec accumulated without a future delta")
	}
}

// End-to-end: checkpointing must remain gradient-exact through explicit
// recurrence (the lateral path crosses segment boundaries via the carried
// deltas).
func TestRecurrentNetworkBPTT(t *testing.T) {
	nrn := snn.Params{Leak: 0.9, Threshold: 0.8}
	net := NewNetwork("recnet", []int{6},
		NewRecurrentSpikingLinear("rec1", 8, nrn, snn.FastSigmoid{}),
		NewReadout("out", 3, nrn),
	)
	if err := net.Build(tensor.NewRNG(21)); err != nil {
		t.Fatal(err)
	}
	const T = 6
	r := tensor.NewRNG(22)
	xs := make([]*tensor.Tensor, T)
	for i := range xs {
		xs[i] = tensor.New(2, 6)
		r.FillUniform(xs[i], 0, 2)
	}
	labels := []int{0, 2}

	// Full BPTT by hand.
	all := make([][]*LayerState, T)
	var states []*LayerState
	for tt := 0; tt < T; tt++ {
		states = net.ForwardStep(xs[tt], states)
		all[tt] = states
	}
	dlogits := tensor.New(2, 3)
	tensor.CrossEntropy(net.Logits(all[T-1]), labels, dlogits)
	net.ZeroGrads()
	var deltas []*Delta
	for tt := T - 1; tt >= 0; tt-- {
		inject := map[int]*tensor.Tensor{}
		if tt == T-1 {
			inject[1] = dlogits
		}
		deltas = net.BackwardStep(xs[tt], all[tt], inject, deltas)
	}
	var recNorm float32
	for _, p := range net.Params() {
		if p.Name == "rec1.recurrent" {
			recNorm = tensor.Norm2(p.G)
		}
	}
	if recNorm == 0 {
		t.Fatal("recurrent weights received no gradient through BPTT")
	}
}
