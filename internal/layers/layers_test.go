package layers

import (
	"math"
	"testing"

	"skipper/internal/snn"
	"skipper/internal/tensor"
)

func testNeuron() snn.Params { return snn.Params{Leak: 0.9, Threshold: 1} }

func buildLayer(t *testing.T, l Layer, inShape []int) []int {
	t.Helper()
	out, err := l.Build(inShape, tensor.NewRNG(1))
	if err != nil {
		t.Fatalf("Build(%s): %v", l.Name(), err)
	}
	return out
}

func TestSpikingConvBuildShapes(t *testing.T) {
	l := NewSpikingConv2D("c1", 8, 3, 1, 1, testNeuron(), snn.Triangle{})
	out := buildLayer(t, l, []int{3, 16, 16})
	if out[0] != 8 || out[1] != 16 || out[2] != 16 {
		t.Fatalf("out shape = %v", out)
	}
	l2 := NewSpikingConv2D("c2", 4, 3, 2, 1, testNeuron(), snn.Triangle{})
	out = buildLayer(t, l2, []int{8, 16, 16})
	if out[1] != 8 || out[2] != 8 {
		t.Fatalf("strided out shape = %v", out)
	}
	if len(l.Params()) != 2 {
		t.Fatalf("conv params = %d, want 2", len(l.Params()))
	}
}

func TestSpikingConvRejectsBadInput(t *testing.T) {
	l := NewSpikingConv2D("c", 4, 3, 1, 1, testNeuron(), snn.Triangle{})
	if _, err := l.Build([]int{10}, tensor.NewRNG(1)); err == nil {
		t.Fatal("conv should reject rank-1 input")
	}
	bad := NewSpikingConv2D("c", 4, 3, 1, 1, snn.Params{Leak: -1, Threshold: 1}, snn.Triangle{})
	if _, err := bad.Build([]int{1, 8, 8}, tensor.NewRNG(1)); err == nil {
		t.Fatal("conv should reject invalid neuron params")
	}
}

func TestSpikingConvForwardSpikesBinary(t *testing.T) {
	l := NewSpikingConv2D("c", 4, 3, 1, 1, testNeuron(), snn.Triangle{})
	buildLayer(t, l, []int{2, 8, 8})
	r := tensor.NewRNG(3)
	x := tensor.New(2, 2, 8, 8)
	r.FillUniform(x, 0, 1)
	st := l.Forward(x, nil)
	if st.U == nil || st.O == nil {
		t.Fatal("state missing U or O")
	}
	for _, v := range st.O.Data {
		if v != 0 && v != 1 {
			t.Fatalf("spike value %v not binary", v)
		}
	}
	// Second step with state: must not panic and obey shapes.
	st2 := l.Forward(x, st)
	if !st2.U.SameShape(st.U) {
		t.Fatal("state shape changed between steps")
	}
}

func TestSpikingConvForwardDeterministic(t *testing.T) {
	l := NewSpikingConv2D("c", 4, 3, 1, 1, testNeuron(), snn.Triangle{})
	buildLayer(t, l, []int{2, 8, 8})
	r := tensor.NewRNG(5)
	x := tensor.New(1, 2, 8, 8)
	r.FillUniform(x, 0, 2)
	a := l.Forward(x, nil)
	b := l.Forward(x, nil)
	for i := range a.U.Data {
		if a.U.Data[i] != b.U.Data[i] || a.O.Data[i] != b.O.Data[i] {
			t.Fatal("Forward is not a pure function of (x, prev)")
		}
	}
}

// adjointCheckConv verifies that Backward's gradIn is the exact adjoint of
// the surrogate-linearised forward map dx -> σ'(U) ⊙ conv(dx, W):
// ⟨σ'(U)⊙conv(dx), g⟩ == ⟨dx, Backward(g)⟩.
func TestSpikingConvBackwardAdjoint(t *testing.T) {
	l := NewSpikingConv2D("c", 3, 3, 1, 1, testNeuron(), snn.FastSigmoid{})
	buildLayer(t, l, []int{2, 6, 6})
	r := tensor.NewRNG(7)
	x := tensor.New(2, 2, 6, 6)
	r.FillUniform(x, 0, 1.5)
	st := l.Forward(x, nil)

	g := tensor.New(st.O.Shape()...)
	r.FillNorm(g, 0, 1)
	dx := tensor.New(x.Shape()...)
	r.FillNorm(dx, 0, 1)

	l.gradW.Zero()
	l.gradB.Zero()
	gradIn, delta := l.Backward(x, st, g, nil)
	if delta == nil || delta.D == nil {
		t.Fatal("spiking conv must return a delta")
	}

	// Linearised forward applied to dx.
	lin := tensor.New(st.O.Shape()...)
	tensor.Conv2D(nil, lin, dx, l.weight, nil, l.Spec, nil)
	for i := range lin.Data {
		lin.Data[i] *= l.Surrogate.Grad(st.U.Data[i], l.Neuron.Threshold)
	}
	lhs := float64(tensor.Dot(lin, g))
	rhs := float64(tensor.Dot(dx, gradIn))
	if math.Abs(lhs-rhs) > 1e-2*math.Max(1, math.Abs(lhs)) {
		t.Fatalf("adjoint identity violated: %v vs %v", lhs, rhs)
	}
}

// The weight gradient must satisfy ⟨σ'(U)⊙conv(x; dW), g⟩ == ⟨dW, gradW⟩.
func TestSpikingConvWeightGradAdjoint(t *testing.T) {
	l := NewSpikingConv2D("c", 3, 3, 1, 1, testNeuron(), snn.FastSigmoid{})
	buildLayer(t, l, []int{2, 5, 5})
	r := tensor.NewRNG(11)
	x := tensor.New(2, 2, 5, 5)
	r.FillUniform(x, 0, 1.5)
	st := l.Forward(x, nil)
	g := tensor.New(st.O.Shape()...)
	r.FillNorm(g, 0, 1)
	l.gradW.Zero()
	l.gradB.Zero()
	l.Backward(x, st, g, nil)

	dW := tensor.New(l.weight.Shape()...)
	r.FillNorm(dW, 0, 1)
	lin := tensor.New(st.O.Shape()...)
	tensor.Conv2D(nil, lin, x, dW, nil, l.Spec, nil)
	for i := range lin.Data {
		lin.Data[i] *= l.Surrogate.Grad(st.U.Data[i], l.Neuron.Threshold)
	}
	lhs := float64(tensor.Dot(lin, g))
	rhs := float64(tensor.Dot(dW, l.gradW))
	if math.Abs(lhs-rhs) > 1e-2*math.Max(1, math.Abs(lhs)) {
		t.Fatalf("weight-grad adjoint violated: %v vs %v", lhs, rhs)
	}
}

// δ recursion: with deltaIn, delta must gain λ·deltaIn exactly.
func TestSpikingConvDeltaRecursion(t *testing.T) {
	l := NewSpikingConv2D("c", 2, 3, 1, 1, testNeuron(), snn.Triangle{})
	buildLayer(t, l, []int{1, 4, 4})
	r := tensor.NewRNG(13)
	x := tensor.New(1, 1, 4, 4)
	r.FillUniform(x, 0, 1.5)
	st := l.Forward(x, nil)
	g := tensor.New(st.O.Shape()...)
	r.FillNorm(g, 0, 1)

	l.gradW.Zero()
	l.gradB.Zero()
	_, d0 := l.Backward(x, st, g, nil)

	din := &Delta{D: tensor.New(st.U.Shape()...)}
	din.D.Fill(2)
	l.gradW.Zero()
	l.gradB.Zero()
	_, d1 := l.Backward(x, st, g, din)
	for i := range d0.D.Data {
		want := d0.D.Data[i] + l.Neuron.Leak*2
		if math.Abs(float64(d1.D.Data[i]-want)) > 1e-5 {
			t.Fatalf("delta recursion wrong at %d: %v want %v", i, d1.D.Data[i], want)
		}
	}
}

func TestSpikingLinearShapes(t *testing.T) {
	l := NewSpikingLinear("fc", 10, testNeuron(), snn.Triangle{})
	out := buildLayer(t, l, []int{4, 2, 2})
	if out[0] != 10 {
		t.Fatalf("out = %v", out)
	}
	x := tensor.New(3, 4, 2, 2)
	st := l.Forward(x, nil)
	if st.O.Dim(0) != 3 || st.O.Dim(1) != 10 {
		t.Fatalf("forward shape %v", st.O.Shape())
	}
	g := tensor.New(3, 10)
	gradIn, _ := l.Backward(x, st, g, nil)
	if !gradIn.SameShape(x) {
		t.Fatalf("gradIn shape %v, want %v", gradIn.Shape(), x.Shape())
	}
}

func TestSpikingLinearRequiresSurrogate(t *testing.T) {
	l := &SpikingLinear{Out: 4, Neuron: testNeuron(), Label: "fc"}
	if _, err := l.Build([]int{8}, tensor.NewRNG(1)); err == nil {
		t.Fatal("non-readout linear without surrogate must fail Build")
	}
}

func TestReadoutIntegratesWithoutSpiking(t *testing.T) {
	l := NewReadout("out", 3, snn.Params{Leak: 0.5, Threshold: 1})
	buildLayer(t, l, []int{2})
	x := tensor.FromSlice([]float32{1, 0}, 1, 2)
	st1 := l.Forward(x, nil)
	st2 := l.Forward(x, st1)
	// U2 = 0.5*U1 + I where I is identical each step -> U2 = 1.5*I
	for i := range st1.U.Data {
		want := 1.5 * st1.U.Data[i]
		if math.Abs(float64(st2.U.Data[i]-want)) > 1e-5 {
			t.Fatalf("readout integration wrong: %v want %v", st2.U.Data[i], want)
		}
	}
	// O is the membrane, not spikes.
	for i := range st2.O.Data {
		if st2.O.Data[i] != st2.U.Data[i] {
			t.Fatal("readout O must equal U")
		}
	}
}

// Full-temporal finite-difference check through the exactly-differentiable
// readout path: a single readout layer unrolled T steps with loss at the
// final step. This validates the λ-recursion of BackwardStep end to end.
func TestReadoutBPTTFiniteDifference(t *testing.T) {
	const T = 5
	nrn := snn.Params{Leak: 0.8, Threshold: 1}
	net := NewNetwork("ro", []int{3}, NewReadout("out", 2, nrn))
	if err := net.Build(tensor.NewRNG(2)); err != nil {
		t.Fatal(err)
	}
	r := tensor.NewRNG(3)
	xs := make([]*tensor.Tensor, T)
	for i := range xs {
		xs[i] = tensor.New(2, 3)
		r.FillNorm(xs[i], 0, 1)
	}
	labels := []int{0, 1}

	run := func() float64 {
		var states []*LayerState
		for tt := 0; tt < T; tt++ {
			states = net.ForwardStep(xs[tt], states)
		}
		loss, _ := tensor.CrossEntropy(net.Logits(states), labels, nil)
		return loss
	}

	// Analytic gradient via full BPTT.
	net.ZeroGrads()
	all := make([][]*LayerState, T)
	var states []*LayerState
	for tt := 0; tt < T; tt++ {
		states = net.ForwardStep(xs[tt], states)
		all[tt] = states
	}
	dlogits := tensor.New(2, 2)
	tensor.CrossEntropy(net.Logits(all[T-1]), labels, dlogits)
	var deltas []*Delta
	for tt := T - 1; tt >= 0; tt-- {
		gr := map[int]*tensor.Tensor{}
		if tt == T-1 {
			gr[0] = dlogits
		}
		deltas = net.BackwardStep(xs[tt], all[tt], gr, deltas)
	}

	p := net.Params()[0] // weight
	eps := float32(1e-3)
	for i := 0; i < p.W.Len(); i++ {
		old := p.W.Data[i]
		p.W.Data[i] = old + eps
		lp := run()
		p.W.Data[i] = old - eps
		lm := run()
		p.W.Data[i] = old
		fd := (lp - lm) / (2 * float64(eps))
		if math.Abs(fd-float64(p.G.Data[i])) > 5e-3 {
			t.Fatalf("weight grad[%d] = %v, finite-diff %v", i, p.G.Data[i], fd)
		}
	}
}

func TestAvgPoolLayer(t *testing.T) {
	l := NewAvgPool2D("p", 2)
	out := buildLayer(t, l, []int{3, 8, 8})
	if out[0] != 3 || out[1] != 4 || out[2] != 4 {
		t.Fatalf("pool out = %v", out)
	}
	if l.Stateful() {
		t.Fatal("pool must be stateless")
	}
	x := tensor.New(2, 3, 8, 8)
	x.Fill(1)
	st := l.Forward(x, nil)
	for _, v := range st.O.Data {
		if v != 1 {
			t.Fatalf("avg of ones = %v", v)
		}
	}
	g := tensor.New(2, 3, 4, 4)
	g.Fill(4)
	gradIn, d := l.Backward(x, st, g, nil)
	if d != nil {
		t.Fatal("stateless layer must return nil delta")
	}
	for _, v := range gradIn.Data {
		if v != 1 {
			t.Fatalf("pool grad = %v, want 1", v)
		}
	}
}

func TestAvgPoolRejectsIndivisible(t *testing.T) {
	l := NewAvgPool2D("p", 3)
	if _, err := l.Build([]int{1, 8, 8}, tensor.NewRNG(1)); err == nil {
		t.Fatal("pool should reject non-dividing window")
	}
}

func TestGlobalAvgPoolLayer(t *testing.T) {
	l := NewGlobalAvgPool("gap")
	out := buildLayer(t, l, []int{5, 4, 4})
	if len(out) != 1 || out[0] != 5 {
		t.Fatalf("gap out = %v", out)
	}
	x := tensor.New(2, 5, 4, 4)
	x.Fill(3)
	st := l.Forward(x, nil)
	for _, v := range st.O.Data {
		if v != 3 {
			t.Fatalf("gap = %v", v)
		}
	}
	g := tensor.New(2, 5)
	g.Fill(16)
	gradIn, _ := l.Backward(x, st, g, nil)
	for _, v := range gradIn.Data {
		if v != 1 {
			t.Fatalf("gap grad = %v", v)
		}
	}
}

func TestDropoutMaskFrozenAndDeterministic(t *testing.T) {
	l := NewDropout("d", 0.5)
	buildLayer(t, l, []int{4, 2, 2})
	l.BeginIteration(tensor.NewRNG(7))
	x := tensor.New(1, 4, 2, 2)
	x.Fill(1)
	a := l.Forward(x, nil)
	b := l.Forward(x, nil)
	for i := range a.O.Data {
		if a.O.Data[i] != b.O.Data[i] {
			t.Fatal("dropout mask changed within an iteration")
		}
	}
	// Same seed -> same mask.
	l2 := NewDropout("d", 0.5)
	buildLayer(t, l2, []int{4, 2, 2})
	l2.BeginIteration(tensor.NewRNG(7))
	c := l2.Forward(x, nil)
	for i := range a.O.Data {
		if a.O.Data[i] != c.O.Data[i] {
			t.Fatal("dropout mask not reproducible from seed")
		}
	}
}

func TestDropoutEvalIsIdentity(t *testing.T) {
	l := NewDropout("d", 0.5)
	buildLayer(t, l, []int{10})
	x := tensor.New(2, 10)
	tensor.NewRNG(1).FillNorm(x, 0, 1)
	st := l.Forward(x, nil) // no BeginIteration: eval mode
	for i := range x.Data {
		if st.O.Data[i] != x.Data[i] {
			t.Fatal("eval dropout must be identity")
		}
	}
	l.BeginIteration(tensor.NewRNG(2))
	l.EndIteration()
	st = l.Forward(x, nil)
	for i := range x.Data {
		if st.O.Data[i] != x.Data[i] {
			t.Fatal("EndIteration must restore identity")
		}
	}
}

func TestDropoutScalesSurvivors(t *testing.T) {
	l := NewDropout("d", 0.5)
	buildLayer(t, l, []int{1000})
	l.BeginIteration(tensor.NewRNG(9))
	x := tensor.New(1, 1000)
	x.Fill(1)
	st := l.Forward(x, nil)
	var kept int
	for _, v := range st.O.Data {
		if v != 0 {
			if math.Abs(float64(v)-2) > 1e-6 {
				t.Fatalf("survivor scaled to %v, want 2", v)
			}
			kept++
		}
	}
	if kept < 400 || kept > 600 {
		t.Fatalf("kept %d of 1000 at p=0.5", kept)
	}
}

func TestDropoutRejectsBadP(t *testing.T) {
	l := NewDropout("d", 1.0)
	if _, err := l.Build([]int{4}, tensor.NewRNG(1)); err == nil {
		t.Fatal("p=1 must be rejected")
	}
}

func TestResidualBlockIdentity(t *testing.T) {
	l := NewResidualBlock("rb", 4, 1, testNeuron(), snn.Triangle{})
	out := buildLayer(t, l, []int{4, 8, 8})
	if out[0] != 4 || out[1] != 8 || out[2] != 8 {
		t.Fatalf("identity block out = %v", out)
	}
	if !l.identity {
		t.Fatal("same-shape block should use identity shortcut")
	}
	if l.ConvCount() != 2 || len(l.Params()) != 4 {
		t.Fatalf("identity block params = %d", len(l.Params()))
	}
}

func TestResidualBlockProjection(t *testing.T) {
	l := NewResidualBlock("rb", 8, 2, testNeuron(), snn.Triangle{})
	out := buildLayer(t, l, []int{4, 8, 8})
	if out[0] != 8 || out[1] != 4 || out[2] != 4 {
		t.Fatalf("projection block out = %v", out)
	}
	if l.identity || l.ConvCount() != 3 || len(l.Params()) != 5 {
		t.Fatal("downsampling block should have a projection shortcut")
	}
}

func TestResidualBlockForwardBackwardShapes(t *testing.T) {
	for _, stride := range []int{1, 2} {
		l := NewResidualBlock("rb", 6, stride, testNeuron(), snn.Triangle{})
		buildLayer(t, l, []int{3, 8, 8})
		r := tensor.NewRNG(21)
		x := tensor.New(2, 3, 8, 8)
		r.FillUniform(x, 0, 1.5)
		st := l.Forward(x, nil)
		if len(st.Sub) != 1 || st.Sub[0].U == nil {
			t.Fatal("block state must carry the first stage")
		}
		st2 := l.Forward(x, st)
		g := tensor.New(st2.O.Shape()...)
		r.FillNorm(g, 0, 1)
		gradIn, d := l.Backward(x, st2, g, nil)
		if !gradIn.SameShape(x) {
			t.Fatalf("gradIn shape %v", gradIn.Shape())
		}
		if d == nil || len(d.Sub) != 1 {
			t.Fatal("block delta must mirror state structure")
		}
		// Delta recursion with sub-deltas must not panic and must add λ·din.
		_, d2 := l.Backward(x, st2, g, d)
		if d2.D == nil || d2.Sub[0].D == nil {
			t.Fatal("recursed delta incomplete")
		}
	}
}

func TestNetworkBuildAndSummary(t *testing.T) {
	nrn := testNeuron()
	net := NewNetwork("tiny", []int{2, 8, 8},
		NewSpikingConv2D("conv1", 4, 3, 1, 1, nrn, snn.Triangle{}),
		NewAvgPool2D("pool1", 2),
		NewSpikingConv2D("conv2", 8, 3, 1, 1, nrn, snn.Triangle{}),
		NewAvgPool2D("pool2", 2),
		NewReadout("out", 5, nrn),
	)
	if err := net.Build(tensor.NewRNG(1)); err != nil {
		t.Fatal(err)
	}
	if got := net.OutShape(); len(got) != 1 || got[0] != 5 {
		t.Fatalf("OutShape = %v", got)
	}
	if got := net.StatefulCount(); got != 3 {
		t.Fatalf("StatefulCount = %d, want 3", got)
	}
	if net.ParamCount() == 0 || net.ParamBytes() == 0 {
		t.Fatal("network should have parameters")
	}
	if s := net.Summary(); len(s) == 0 {
		t.Fatal("Summary empty")
	}
	if net.RecordBytes(4) <= 0 {
		t.Fatal("RecordBytes must be positive")
	}
	if net.WorkspaceBytes(4) <= 0 {
		t.Fatal("WorkspaceBytes must be positive")
	}
}

func TestNetworkStatefulCountResidual(t *testing.T) {
	nrn := testNeuron()
	net := NewNetwork("res", []int{2, 8, 8},
		NewSpikingConv2D("stem", 4, 3, 1, 1, nrn, snn.Triangle{}),
		NewResidualBlock("rb1", 4, 1, nrn, snn.Triangle{}),
		NewGlobalAvgPool("gap"),
		NewReadout("out", 3, nrn),
	)
	if err := net.Build(tensor.NewRNG(1)); err != nil {
		t.Fatal(err)
	}
	// stem(1) + block(2 LIF stages) + readout(1) = 4
	if got := net.StatefulCount(); got != 4 {
		t.Fatalf("StatefulCount = %d, want 4", got)
	}
}

func TestNetworkForwardBackwardRoundTrip(t *testing.T) {
	nrn := testNeuron()
	net := NewNetwork("tiny", []int{2, 8, 8},
		NewSpikingConv2D("conv1", 4, 3, 1, 1, nrn, snn.Triangle{}),
		NewAvgPool2D("pool1", 2),
		NewReadout("out", 3, nrn),
	)
	if err := net.Build(tensor.NewRNG(1)); err != nil {
		t.Fatal(err)
	}
	r := tensor.NewRNG(2)
	x := tensor.New(2, 2, 8, 8)
	r.FillUniform(x, 0, 1.5)

	var states []*LayerState
	for tt := 0; tt < 4; tt++ {
		states = net.ForwardStep(x, states)
	}
	logits := net.Logits(states)
	if logits.Dim(0) != 2 || logits.Dim(1) != 3 {
		t.Fatalf("logits shape %v", logits.Shape())
	}
	if s := net.SpikeSum(states); s < 0 {
		t.Fatalf("SpikeSum = %v", s)
	}
	dl := tensor.New(2, 3)
	dl.Fill(0.1)
	net.ZeroGrads()
	deltas := net.BackwardStep(x, states, map[int]*tensor.Tensor{2: dl}, nil)
	if len(deltas) != 3 {
		t.Fatalf("deltas = %d", len(deltas))
	}
	if deltas[1] != nil {
		t.Fatal("pool layer delta must be nil")
	}
	var gradNorm float32
	for _, p := range net.Params() {
		gradNorm += tensor.Norm2(p.G)
	}
	if gradNorm == 0 {
		t.Fatal("backward produced no gradients")
	}
	net.ZeroGrads()
	for _, p := range net.Params() {
		if tensor.Norm2(p.G) != 0 {
			t.Fatal("ZeroGrads left residue")
		}
	}
}

func TestNetworkSpikeSumExcludesReadout(t *testing.T) {
	nrn := testNeuron()
	net := NewNetwork("ro-only", []int{4}, NewReadout("out", 2, nrn))
	if err := net.Build(tensor.NewRNG(1)); err != nil {
		t.Fatal(err)
	}
	x := tensor.New(1, 4)
	x.Fill(5) // large membrane values in readout
	states := net.ForwardStep(x, nil)
	if s := net.SpikeSum(states); s != 0 {
		t.Fatalf("SpikeSum must exclude the readout membrane, got %v", s)
	}
}

func TestNetworkUnbuiltPanics(t *testing.T) {
	net := NewNetwork("x", []int{1}, NewReadout("out", 2, testNeuron()))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on unbuilt use")
		}
	}()
	net.ForwardStep(tensor.New(1, 1), nil)
}

func TestMaxPoolLayer(t *testing.T) {
	l := NewMaxPool2D("mp", 2)
	out := buildLayer(t, l, []int{2, 4, 4})
	if out[1] != 2 || out[2] != 2 {
		t.Fatalf("maxpool out = %v", out)
	}
	x := tensor.New(1, 2, 4, 4)
	tensor.NewRNG(3).FillNorm(x, 0, 1)
	st := l.Forward(x, nil)
	if st.U == nil {
		t.Fatal("maxpool must record indices in U")
	}
	g := tensor.New(1, 2, 2, 2)
	g.Fill(1)
	gradIn, d := l.Backward(x, st, g, nil)
	if d != nil {
		t.Fatal("maxpool must be stateless")
	}
	// The gradient mass routes to exactly one element per window.
	if got := tensor.Sum(gradIn); got != 8 {
		t.Fatalf("gradient mass %v, want 8", got)
	}
	if tensor.CountNonZero(gradIn) != 8 {
		t.Fatalf("gradient spread over %d positions, want 8", tensor.CountNonZero(gradIn))
	}
}

// Max pooling participates in checkpointed training: its recomputed indices
// must be identical, so the full forward/backward round trip through a
// network containing it stays deterministic.
func TestMaxPoolInNetwork(t *testing.T) {
	nrn := testNeuron()
	net := NewNetwork("mp-net", []int{2, 8, 8},
		NewSpikingConv2D("c1", 4, 3, 1, 1, nrn, snn.Triangle{}),
		NewMaxPool2D("mp", 2),
		NewReadout("out", 3, nrn),
	)
	if err := net.Build(tensor.NewRNG(5)); err != nil {
		t.Fatal(err)
	}
	x := tensor.New(2, 2, 8, 8)
	tensor.NewRNG(6).FillUniform(x, 0, 1.5)
	a := net.ForwardStep(x, nil)
	b := net.ForwardStep(x, nil)
	for i := range a[1].U.Data {
		if a[1].U.Data[i] != b[1].U.Data[i] {
			t.Fatal("maxpool indices not reproducible")
		}
	}
	dl := tensor.New(2, 3)
	dl.Fill(0.2)
	net.ZeroGrads()
	net.BackwardStep(x, a, map[int]*tensor.Tensor{2: dl}, nil)
	var norm float32
	for _, p := range net.Params() {
		norm += tensor.Norm2(p.G)
	}
	if norm == 0 {
		t.Fatal("no gradients through maxpool")
	}
}
