package layers

import (
	"fmt"

	"skipper/internal/parallel"
	"skipper/internal/snn"
	"skipper/internal/tensor"
)

// SpikingConv2D is a convolutional layer followed by a layer of LIF neurons.
// Per timestep it computes the synaptic current I_t = conv(x_t, W) + b and
// advances the membrane per Eq. 1; its backward implements the δ recursion
// of Eq. 2 with the configured surrogate gradient.
type SpikingConv2D struct {
	Spec      tensor.ConvSpec
	Neuron    snn.Params
	Surrogate snn.Surrogate
	Label     string

	weight, bias *tensor.Tensor
	gradW, gradB *tensor.Tensor

	inShape   []int // [C,H,W]
	outShape  []int // [Cout,OH,OW]
	pool      *parallel.Pool
	scratch   *tensor.Scratch
	colLen    int
	spikePack bool
}

// NewSpikingConv2D returns an unbuilt spiking conv layer. kernel/stride/pad
// follow tensor.ConvSpec semantics.
func NewSpikingConv2D(label string, out, kernel, stride, pad int, neuron snn.Params, surr snn.Surrogate) *SpikingConv2D {
	return &SpikingConv2D{
		Spec:      tensor.ConvSpec{OutChannels: out, KernelH: kernel, KernelW: kernel, Stride: stride, Pad: pad},
		Neuron:    neuron,
		Surrogate: surr,
		Label:     label,
	}
}

// Name implements Layer.
func (l *SpikingConv2D) Name() string { return l.Label }

// Stateful implements Layer.
func (l *SpikingConv2D) Stateful() bool { return true }

// Build implements Layer.
func (l *SpikingConv2D) Build(inShape []int, rng *tensor.RNG) ([]int, error) {
	if len(inShape) != 3 {
		return nil, fmt.Errorf("layers: %s expects [C,H,W] input, got %v", l.Label, inShape)
	}
	if err := l.Neuron.Validate(); err != nil {
		return nil, fmt.Errorf("layers: %s: %w", l.Label, err)
	}
	l.Spec.InChannels = inShape[0]
	oh, ow := l.Spec.OutSize(inShape[1], inShape[2])
	if oh <= 0 || ow <= 0 {
		return nil, fmt.Errorf("layers: %s output %dx%d collapses", l.Label, oh, ow)
	}
	l.inShape = append([]int(nil), inShape...)
	l.outShape = []int{l.Spec.OutChannels, oh, ow}
	l.weight = tensor.New(l.Spec.OutChannels, l.Spec.InChannels, l.Spec.KernelH, l.Spec.KernelW)
	l.bias = tensor.New(l.Spec.OutChannels)
	l.gradW = tensor.New(l.Spec.OutChannels, l.Spec.InChannels, l.Spec.KernelH, l.Spec.KernelW)
	l.gradB = tensor.New(l.Spec.OutChannels)
	rng.KaimingConv(l.weight)
	l.colLen = l.Spec.ColBufLen(inShape[1], inShape[2])
	l.scratch = tensor.NewScratch()
	return l.outShape, nil
}

// SetPool implements PoolAware.
func (l *SpikingConv2D) SetPool(p *parallel.Pool) { l.pool = p }

// SetSpikePack implements SpikePackAware.
func (l *SpikingConv2D) SetSpikePack(on bool) { l.spikePack = on }

// Params implements Layer.
func (l *SpikingConv2D) Params() []Param {
	return []Param{
		{Name: l.Label + ".weight", W: l.weight, G: l.gradW},
		{Name: l.Label + ".bias", W: l.bias, G: l.gradB},
	}
}

// OutShape returns the built per-sample output shape.
func (l *SpikingConv2D) OutShape() []int { return l.outShape }

// Forward implements Layer.
func (l *SpikingConv2D) Forward(x *tensor.Tensor, prev *LayerState) *LayerState {
	b := x.Dim(0)
	u := tensor.New(b, l.outShape[0], l.outShape[1], l.outShape[2])
	// Compute the synaptic current directly into u, then fold in the
	// leak/reset recurrence.
	tensor.Conv2D(l.pool, u, x, l.weight, l.bias, l.Spec, l.scratch)
	return l.fire(u, prev, b)
}

// ForwardPacked implements PackedForward: the convolution runs on a packed
// im2col of the input spike bits (bit-identical to the dense Conv2D).
func (l *SpikingConv2D) ForwardPacked(_ *tensor.Tensor, xp *tensor.PackedSpikes, prev *LayerState) *LayerState {
	b := xp.Shape()[0]
	u := tensor.New(b, l.outShape[0], l.outShape[1], l.outShape[2])
	tensor.Conv2DPacked(l.pool, u, xp, l.weight, l.bias, l.Spec, l.scratch)
	return l.fire(u, prev, b)
}

// fire folds in the leak/reset recurrence and packages the state record.
func (l *SpikingConv2D) fire(u *tensor.Tensor, prev *LayerState, b int) *LayerState {
	o := tensor.New(b, l.outShape[0], l.outShape[1], l.outShape[2])
	stepLIFPrev(l.pool, u, o, prev, l.Neuron)
	st := &LayerState{U: u, O: o}
	if l.spikePack {
		packOutput(st, o)
	}
	return st
}

// Backward implements Layer. It computes
//
//	δ_t = σ'(U_t) ⊙ ∂L/∂o_t + λ·δ_{t+1}
//	∂L/∂x_t = convGradInput(δ_t, W)
//	∂W     += convGradWeight(δ_t, x_t)
//
// The reset-path gradient is ignored, as in the paper.
func (l *SpikingConv2D) Backward(x *tensor.Tensor, st *LayerState, gradOut *tensor.Tensor, deltaIn *Delta) (*tensor.Tensor, *Delta) {
	delta := tensor.New(st.U.Shape()...)
	var next *tensor.Tensor
	if deltaIn != nil {
		next = deltaIn.D
	}
	snn.SurrogateDelta(l.pool, delta, st.U, gradOut, next, l.Neuron.Threshold, l.Neuron.Leak, l.Surrogate)
	gradIn := tensor.New(x.Shape()...)
	tensor.Conv2DGradInput(l.pool, gradIn, delta, l.weight, l.Spec, l.scratch)
	tensor.Conv2DGradWeight(l.pool, l.gradW, l.gradB, delta, x, l.Spec, l.scratch)
	return gradIn, &Delta{D: delta}
}

// BackwardPacked implements PackedBackward: the input spikes feed only the
// weight gradient, which the packed gather kernel accumulates bit-identically
// without expanding a lazy checkpoint record.
func (l *SpikingConv2D) BackwardPacked(xp *tensor.PackedSpikes, st *LayerState, gradOut *tensor.Tensor, deltaIn *Delta) (*tensor.Tensor, *Delta) {
	delta := tensor.New(st.U.Shape()...)
	var next *tensor.Tensor
	if deltaIn != nil {
		next = deltaIn.D
	}
	snn.SurrogateDelta(l.pool, delta, st.U, gradOut, next, l.Neuron.Threshold, l.Neuron.Leak, l.Surrogate)
	gradIn := tensor.New(xp.Shape()...)
	tensor.Conv2DGradInput(l.pool, gradIn, delta, l.weight, l.Spec, l.scratch)
	tensor.Conv2DGradWeightPacked(l.pool, l.gradW, l.gradB, delta, xp, l.Spec, l.scratch)
	return gradIn, &Delta{D: delta}
}

// StateBytes implements Layer: U and O per stored timestep.
func (l *SpikingConv2D) StateBytes(batch int) int64 {
	return 2 * 4 * int64(batch) * int64(shapeVolume(l.outShape))
}

// WorkspaceBytes implements Layer: the im2col buffer. Charged at one column
// regardless of pool width — the device budget models accelerator workspace,
// which must not drift with the host's core count; extra per-lane host
// columns are not part of the paper's memory model.
func (l *SpikingConv2D) WorkspaceBytes(int) int64 { return 4 * int64(l.colLen) }
