package layers

import (
	"testing"

	"skipper/internal/snn"
	"skipper/internal/tensor"
)

func quietTestNet(t *testing.T) *Network {
	t.Helper()
	nrn := snn.Params{Leak: 0.9, Threshold: 1}
	net := NewNetwork("quiettest", []int{2, 8, 8},
		NewSpikingConv2D("c1", 4, 3, 1, 1, nrn, snn.Triangle{}),
		NewMaxPool2D("mp", 2),
		NewSpikingConv2D("c2", 6, 3, 1, 1, nrn, snn.Triangle{}),
		NewAvgPool2D("ap", 2),
		NewDropout("do", 0.2),
		NewSpikingLinear("fc", 12, nrn, snn.Triangle{}),
		NewReadout("out", 4, snn.Params{Leak: 0.8, Threshold: 1}),
	)
	if err := net.Build(tensor.NewRNG(7)); err != nil {
		t.Fatalf("build: %v", err)
	}
	return net
}

// nudgeBiases makes the zero-input currents non-trivial so the quiet chain
// has to handle bias-driven spikes deeper in the stack.
func nudgeBiases(net *Network, scale float32) {
	for _, p := range net.Params() {
		if len(p.W.Shape()) == 1 { // bias vectors
			for i := range p.W.Data {
				p.W.Data[i] = scale * float32(i%5)
			}
		}
	}
}

func statesEqual(t *testing.T, step int, want, got []*LayerState) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("step %d: state count %d vs %d", step, len(got), len(want))
	}
	for i := range want {
		cmp := func(kind string, a, b *tensor.Tensor) {
			if (a == nil) != (b == nil) {
				t.Fatalf("step %d layer %d: %s nil mismatch", step, i, kind)
			}
			if a == nil {
				return
			}
			if len(a.Data) != len(b.Data) {
				t.Fatalf("step %d layer %d: %s len %d vs %d", step, i, kind, len(b.Data), len(a.Data))
			}
			for j := range a.Data {
				if a.Data[j] != b.Data[j] {
					t.Fatalf("step %d layer %d: %s[%d] = %v, want %v", step, i, kind, j, b.Data[j], a.Data[j])
				}
			}
		}
		cmp("U", want[i].U, got[i].U)
		cmp("O", want[i].O, got[i].O)
	}
}

// TestQuietStepBitIdentical is the contract the streaming skip path rests
// on: a QuietState step must be bitwise identical to a full ForwardStep on
// an all-zero input, from any reachable state, including states where bias
// pressure makes deep layers fire during the quiet run.
func TestQuietStepBitIdentical(t *testing.T) {
	for _, biasScale := range []float32{0, 0.4} {
		netA := quietTestNet(t)
		netB := quietTestNet(t)
		nudgeBiases(netA, biasScale)
		nudgeBiases(netB, biasScale)

		const batch = 2
		q := NewQuietState(netA, batch)
		if !q.Supported() {
			t.Fatalf("quiet path should support the test stack")
		}
		zero := tensor.New(batch, 2, 8, 8)
		rng := tensor.NewRNG(99)
		busy := tensor.New(batch, 2, 8, 8)
		for i := range busy.Data {
			if rng.Float32() < 0.3 {
				busy.Data[i] = 1
			}
		}

		var sa, sb []*LayerState
		// Mix busy and quiet steps so the quiet path is exercised from
		// fresh, charged, and refractory membrane states.
		for step := 0; step < 12; step++ {
			if step%3 == 0 {
				sa = netA.ForwardStep(busy, sa)
				sb = netB.ForwardStep(busy, sb)
				statesEqual(t, step, sb, sa)
				continue
			}
			var ok bool
			sa, ok = q.Step(sa)
			if !ok {
				t.Fatalf("step %d: quiet step refused", step)
			}
			sb = netB.ForwardStep(zero, sb)
			statesEqual(t, step, sb, sa)
		}
	}
}

// TestQuietStepUnsupported: stacks with layers outside the quiet model must
// refuse rather than approximate.
func TestQuietStepUnsupported(t *testing.T) {
	nrn := snn.Params{Leak: 0.9, Threshold: 1}
	net := NewNetwork("resnet", []int{4, 8, 8},
		NewSpikingConv2D("stem", 4, 3, 1, 1, nrn, snn.Triangle{}),
		NewResidualBlock("rb", 4, 1, nrn, snn.Triangle{}),
		NewReadout("out", 4, nrn),
	)
	if err := net.Build(tensor.NewRNG(3)); err != nil {
		t.Fatalf("build: %v", err)
	}
	q := NewQuietState(net, 1)
	if q.Supported() {
		t.Fatalf("residual stack must be unsupported")
	}
	if _, ok := q.Step(nil); ok {
		t.Fatalf("Step must refuse on unsupported stacks")
	}
}

// TestQuietStepInvalidate: weight changes must be picked up after
// Invalidate.
func TestQuietStepInvalidate(t *testing.T) {
	net := quietTestNet(t)
	ref := quietTestNet(t)
	q := NewQuietState(net, 1)
	st, ok := q.Step(nil)
	if !ok {
		t.Fatal("quiet step refused")
	}
	_ = st
	nudgeBiases(net, 0.5)
	nudgeBiases(ref, 0.5)
	q.Invalidate()
	got, ok := q.Step(nil)
	if !ok {
		t.Fatal("quiet step refused after invalidate")
	}
	zero := tensor.New(1, 2, 8, 8)
	want := ref.ForwardStep(zero, nil)
	statesEqual(t, 0, want, got)
}
