package layers

import (
	"skipper/internal/parallel"
	"skipper/internal/snn"
	"skipper/internal/tensor"
)

// Spike-pack mode: spike activations travel the stack in bit-packed form and
// the heavy kernels consume the bits directly (AND+popcount gather kernels in
// internal/tensor). Every packed path is bit-identical to its float twin —
// spike values are exactly 0/1, so skipping zero-spike terms is an IEEE-754
// identity — which keeps the checkpointing determinism contract intact.

// PackedForward is implemented by layers that can consume a bit-packed spike
// input. ForwardPacked receives both views of the same input: x dense (always
// available during a fresh forward step, for cheap elementwise uses like
// residual shortcuts) and xp packed (for the gather kernels).
type PackedForward interface {
	ForwardPacked(x *tensor.Tensor, xp *tensor.PackedSpikes, prev *LayerState) *LayerState
}

// PackedBackward is implemented by layers whose backward pass needs the
// layer input only on the spike side (weight gradients). It receives ONLY
// the packed input — a lazily materialised checkpoint boundary record may
// have no dense spikes at all.
type PackedBackward interface {
	BackwardPacked(xp *tensor.PackedSpikes, st *LayerState, gradOut *tensor.Tensor, deltaIn *Delta) (*tensor.Tensor, *Delta)
}

// SpikePackAware is implemented by layers that publish a packed view of
// their spike output when spike-pack mode is on. Network.SetSpikePack fans
// the flag out, mirroring SetPool.
type SpikePackAware interface {
	SetSpikePack(on bool)
}

// stepLIFPrev advances one LIF timestep against a previous state that may be
// dense, bit-packed (a lazy checkpoint record), or absent (t = 0). The
// packed branch is bit-identical to the dense one (see snn.StepLIFPacked),
// so which representation the record happens to hold never changes results.
func stepLIFPrev(pool *parallel.Pool, u, o *tensor.Tensor, prev *LayerState, p snn.Params) {
	switch {
	case prev == nil:
		snn.StepLIF(pool, u, o, nil, nil, u, p)
	case prev.O != nil:
		snn.StepLIF(pool, u, o, prev.U, prev.O, u, p)
	default:
		snn.StepLIFPacked(pool, u, o, prev.U, prev.OPacked, u, p)
	}
}

// packOutput attaches the packed view to a freshly fired spike plane. Spike
// tensors are exactly 0/1 by construction, so packing always applies.
func packOutput(st *LayerState, o *tensor.Tensor) {
	st.OPacked, _ = tensor.PackSpikes(o)
}
