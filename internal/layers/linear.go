package layers

import (
	"fmt"

	"skipper/internal/parallel"
	"skipper/internal/snn"
	"skipper/internal/tensor"
)

// SpikingLinear is a fully-connected layer of LIF neurons. With Readout set
// it becomes the network's output integrator: the neurons accumulate
// membrane potential without firing or resetting (the standard readout for
// the hybrid-training recipe), and O is the membrane itself, so the loss can
// be applied to the accumulated potential at the final timestep.
//
// Rank-4 inputs [B,C,H,W] are flattened to [B,C·H·W] internally, so an
// explicit flatten layer is unnecessary.
type SpikingLinear struct {
	Out       int
	Neuron    snn.Params
	Surrogate snn.Surrogate
	Readout   bool
	Label     string

	weight, bias *tensor.Tensor
	gradW, gradB *tensor.Tensor
	inShape      []int
	inFeatures   int
	pool         *parallel.Pool
	spikePack    bool
}

// SetPool implements PoolAware.
func (l *SpikingLinear) SetPool(p *parallel.Pool) { l.pool = p }

// SetSpikePack implements SpikePackAware.
func (l *SpikingLinear) SetSpikePack(on bool) { l.spikePack = on }

// NewSpikingLinear returns an unbuilt spiking fully-connected layer.
func NewSpikingLinear(label string, out int, neuron snn.Params, surr snn.Surrogate) *SpikingLinear {
	return &SpikingLinear{Out: out, Neuron: neuron, Surrogate: surr, Label: label}
}

// NewReadout returns the output integrator layer with the given class count.
func NewReadout(label string, classes int, neuron snn.Params) *SpikingLinear {
	return &SpikingLinear{Out: classes, Neuron: neuron, Readout: true, Label: label}
}

// Name implements Layer.
func (l *SpikingLinear) Name() string { return l.Label }

// Stateful implements Layer.
func (l *SpikingLinear) Stateful() bool { return true }

// Build implements Layer.
func (l *SpikingLinear) Build(inShape []int, rng *tensor.RNG) ([]int, error) {
	if err := l.Neuron.Validate(); err != nil {
		return nil, fmt.Errorf("layers: %s: %w", l.Label, err)
	}
	if !l.Readout && l.Surrogate == nil {
		return nil, fmt.Errorf("layers: %s needs a surrogate gradient", l.Label)
	}
	l.inShape = append([]int(nil), inShape...)
	l.inFeatures = shapeVolume(inShape)
	l.weight = tensor.New(l.Out, l.inFeatures)
	l.bias = tensor.New(l.Out)
	l.gradW = tensor.New(l.Out, l.inFeatures)
	l.gradB = tensor.New(l.Out)
	rng.KaimingLinear(l.weight)
	return []int{l.Out}, nil
}

// Params implements Layer.
func (l *SpikingLinear) Params() []Param {
	return []Param{
		{Name: l.Label + ".weight", W: l.weight, G: l.gradW},
		{Name: l.Label + ".bias", W: l.bias, G: l.gradB},
	}
}

func (l *SpikingLinear) flatten(x *tensor.Tensor) *tensor.Tensor {
	b := x.Dim(0)
	if x.Rank() == 2 {
		return x
	}
	return x.Reshape(b, l.inFeatures)
}

// Forward implements Layer.
func (l *SpikingLinear) Forward(x *tensor.Tensor, prev *LayerState) *LayerState {
	xf := l.flatten(x)
	b := xf.Dim(0)
	u := tensor.New(b, l.Out)
	tensor.MatMulTransB(l.pool, u, xf, l.weight) // current = x·Wᵀ
	tensor.AddRowBias(u, l.bias)
	return l.fire(u, prev, b)
}

// ForwardPacked implements PackedForward: the synaptic current is gathered
// straight from the input spike bits (bit-identical to the dense matmul).
func (l *SpikingLinear) ForwardPacked(_ *tensor.Tensor, xp *tensor.PackedSpikes, prev *LayerState) *LayerState {
	b := xp.Shape()[0]
	u := tensor.New(b, l.Out)
	tensor.MatMulTransBPacked(l.pool, u, xp, l.weight) // current = x·Wᵀ over set bits
	tensor.AddRowBias(u, l.bias)
	return l.fire(u, prev, b)
}

// fire folds in the leak/reset recurrence and packages the state record.
func (l *SpikingLinear) fire(u *tensor.Tensor, prev *LayerState, b int) *LayerState {
	if l.Readout {
		// Pure integrator: U_t = λ·U_{t−1} + I_t, no spike, no reset.
		if prev != nil {
			tensor.AXPY(u, l.Neuron.Leak, prev.U)
		}
		return &LayerState{U: u, O: u.Clone()}
	}
	o := tensor.New(b, l.Out)
	stepLIFPrev(l.pool, u, o, prev, l.Neuron)
	st := &LayerState{U: u, O: o}
	if l.spikePack {
		packOutput(st, o)
	}
	return st
}

// Backward implements Layer; see SpikingConv2D.Backward for the recursion.
// For a readout layer σ' ≡ 1 (the output is the membrane itself).
func (l *SpikingLinear) Backward(x *tensor.Tensor, st *LayerState, gradOut *tensor.Tensor, deltaIn *Delta) (*tensor.Tensor, *Delta) {
	xf := l.flatten(x)
	b := xf.Dim(0)
	delta := tensor.New(b, l.Out)
	var next *tensor.Tensor
	if deltaIn != nil {
		next = deltaIn.D
	}
	if l.Readout {
		copy(delta.Data, gradOut.Data)
		if next != nil {
			tensor.AXPY(delta, l.Neuron.Leak, next)
		}
	} else {
		snn.SurrogateDelta(l.pool, delta, st.U, gradOut, next, l.Neuron.Threshold, l.Neuron.Leak, l.Surrogate)
	}
	gradFlat := tensor.New(b, l.inFeatures)
	tensor.MatMul(l.pool, gradFlat, delta, l.weight)   // ∂L/∂x = δ·W
	tensor.MatMulTransAAcc(l.pool, l.gradW, delta, xf) // ∂W += δᵀ·x
	tensor.SumPerColumn(l.gradB, delta)                // ∂b += Σ_batch δ
	gradIn := gradFlat.Reshape(x.Shape()...)           // restore caller's view
	return gradIn, &Delta{D: delta}
}

// BackwardPacked implements PackedBackward: the input spikes enter the
// weight gradient only, and the packed accumulate kernel is bit-identical to
// the dense one, so a lazy checkpoint record never needs expanding here.
func (l *SpikingLinear) BackwardPacked(xp *tensor.PackedSpikes, st *LayerState, gradOut *tensor.Tensor, deltaIn *Delta) (*tensor.Tensor, *Delta) {
	b := xp.Shape()[0]
	delta := tensor.New(b, l.Out)
	var next *tensor.Tensor
	if deltaIn != nil {
		next = deltaIn.D
	}
	if l.Readout {
		copy(delta.Data, gradOut.Data)
		if next != nil {
			tensor.AXPY(delta, l.Neuron.Leak, next)
		}
	} else {
		snn.SurrogateDelta(l.pool, delta, st.U, gradOut, next, l.Neuron.Threshold, l.Neuron.Leak, l.Surrogate)
	}
	gradFlat := tensor.New(b, l.inFeatures)
	tensor.MatMul(l.pool, gradFlat, delta, l.weight)         // ∂L/∂x = δ·W
	tensor.MatMulTransAPackedAcc(l.pool, l.gradW, delta, xp) // ∂W += δᵀ·x over set bits
	tensor.SumPerColumn(l.gradB, delta)                      // ∂b += Σ_batch δ
	return gradFlat.Reshape(xp.Shape()...), &Delta{D: delta}
}

// StateBytes implements Layer: U and O per stored timestep.
func (l *SpikingLinear) StateBytes(batch int) int64 {
	return 2 * 4 * int64(batch) * int64(l.Out)
}

// WorkspaceBytes implements Layer.
func (l *SpikingLinear) WorkspaceBytes(int) int64 { return 0 }
