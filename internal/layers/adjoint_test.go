package layers

import (
	"math"
	"testing"

	"skipper/internal/snn"
	"skipper/internal/tensor"
)

// The linear layer's input gradient must be the adjoint of its
// surrogate-linearised forward dx -> σ'(U) ⊙ (dx·Wᵀ).
func TestSpikingLinearBackwardAdjoint(t *testing.T) {
	nrn := snn.Params{Leak: 0.9, Threshold: 0.8}
	l := NewSpikingLinear("fc", 6, nrn, snn.FastSigmoid{})
	if _, err := l.Build([]int{10}, tensor.NewRNG(3)); err != nil {
		t.Fatal(err)
	}
	r := tensor.NewRNG(4)
	x := tensor.New(3, 10)
	r.FillUniform(x, 0, 1.5)
	st := l.Forward(x, nil)

	g := tensor.New(3, 6)
	r.FillNorm(g, 0, 1)
	dx := tensor.New(3, 10)
	r.FillNorm(dx, 0, 1)

	l.gradW.Zero()
	l.gradB.Zero()
	gradIn, _ := l.Backward(x, st, g, nil)

	lin := tensor.New(3, 6)
	tensor.MatMulTransB(nil, lin, dx, l.weight)
	for i := range lin.Data {
		lin.Data[i] *= l.Surrogate.Grad(st.U.Data[i], nrn.Threshold)
	}
	lhs := float64(tensor.Dot(lin, g))
	rhs := float64(tensor.Dot(dx, gradIn))
	if math.Abs(lhs-rhs) > 1e-2*math.Max(1, math.Abs(lhs)) {
		t.Fatalf("linear adjoint violated: %v vs %v", lhs, rhs)
	}
}

// Same identity for the linear weight gradient:
// ⟨σ'(U)⊙(x·dWᵀ), g⟩ == ⟨dW, gradW⟩.
func TestSpikingLinearWeightGradAdjoint(t *testing.T) {
	nrn := snn.Params{Leak: 0.9, Threshold: 0.8}
	l := NewSpikingLinear("fc", 5, nrn, snn.FastSigmoid{})
	if _, err := l.Build([]int{8}, tensor.NewRNG(5)); err != nil {
		t.Fatal(err)
	}
	r := tensor.NewRNG(6)
	x := tensor.New(2, 8)
	r.FillUniform(x, 0, 1.5)
	st := l.Forward(x, nil)
	g := tensor.New(2, 5)
	r.FillNorm(g, 0, 1)

	l.gradW.Zero()
	l.gradB.Zero()
	l.Backward(x, st, g, nil)

	dW := tensor.New(5, 8)
	r.FillNorm(dW, 0, 1)
	lin := tensor.New(2, 5)
	tensor.MatMulTransB(nil, lin, x, dW)
	for i := range lin.Data {
		lin.Data[i] *= l.Surrogate.Grad(st.U.Data[i], nrn.Threshold)
	}
	lhs := float64(tensor.Dot(lin, g))
	rhs := float64(tensor.Dot(dW, l.gradW))
	if math.Abs(lhs-rhs) > 1e-2*math.Max(1, math.Abs(lhs)) {
		t.Fatalf("linear weight-grad adjoint violated: %v vs %v", lhs, rhs)
	}
}

// Strided conv: the adjoint identity must also hold at stride 2 (the
// downsampling stages of the ResNets).
func TestStridedConvBackwardAdjoint(t *testing.T) {
	nrn := snn.Params{Leak: 0.9, Threshold: 0.8}
	l := NewSpikingConv2D("c", 4, 3, 2, 1, nrn, snn.FastSigmoid{})
	if _, err := l.Build([]int{3, 8, 8}, tensor.NewRNG(7)); err != nil {
		t.Fatal(err)
	}
	r := tensor.NewRNG(8)
	x := tensor.New(2, 3, 8, 8)
	r.FillUniform(x, 0, 1.5)
	st := l.Forward(x, nil)
	g := tensor.New(st.O.Shape()...)
	r.FillNorm(g, 0, 1)
	dx := tensor.New(x.Shape()...)
	r.FillNorm(dx, 0, 1)

	l.gradW.Zero()
	l.gradB.Zero()
	gradIn, _ := l.Backward(x, st, g, nil)

	lin := tensor.New(st.O.Shape()...)
	tensor.Conv2D(nil, lin, dx, l.weight, nil, l.Spec, nil)
	for i := range lin.Data {
		lin.Data[i] *= l.Surrogate.Grad(st.U.Data[i], nrn.Threshold)
	}
	lhs := float64(tensor.Dot(lin, g))
	rhs := float64(tensor.Dot(dx, gradIn))
	if math.Abs(lhs-rhs) > 1e-2*math.Max(1, math.Abs(lhs)) {
		t.Fatalf("strided conv adjoint violated: %v vs %v", lhs, rhs)
	}
}

// The bias gradient of a spiking layer is the surrogate-masked gradOut
// summed per output unit.
func TestBiasGradients(t *testing.T) {
	nrn := snn.Params{Leak: 0.9, Threshold: 0.8}
	l := NewSpikingLinear("fc", 4, nrn, snn.FastSigmoid{})
	if _, err := l.Build([]int{6}, tensor.NewRNG(9)); err != nil {
		t.Fatal(err)
	}
	r := tensor.NewRNG(10)
	x := tensor.New(3, 6)
	r.FillUniform(x, 0, 1.5)
	st := l.Forward(x, nil)
	g := tensor.New(3, 4)
	r.FillNorm(g, 0, 1)
	l.gradW.Zero()
	l.gradB.Zero()
	l.Backward(x, st, g, nil)
	for j := 0; j < 4; j++ {
		var want float32
		for b := 0; b < 3; b++ {
			want += g.At(b, j) * l.Surrogate.Grad(st.U.At(b, j), nrn.Threshold)
		}
		if math.Abs(float64(l.gradB.Data[j]-want)) > 1e-4 {
			t.Fatalf("bias grad[%d] = %v, want %v", j, l.gradB.Data[j], want)
		}
	}
}
