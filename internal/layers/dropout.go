package layers

import (
	"fmt"

	"skipper/internal/tensor"
)

// Dropout zeroes a per-neuron subset of its input with probability P and
// rescales survivors by 1/(1−P). The mask is sampled once per training
// iteration (BeginIteration) and frozen across all timesteps and across
// checkpoint recomputation — the standard choice for SNN training, and a
// prerequisite for recompute determinism. With no mask set (evaluation) the
// layer is the identity.
type Dropout struct {
	P     float32
	Label string

	inShape []int
	mask    *tensor.Tensor // per-sample mask broadcast over the batch
}

// NewDropout returns an unbuilt dropout layer with drop probability p.
func NewDropout(label string, p float32) *Dropout {
	return &Dropout{P: p, Label: label}
}

// Name implements Layer.
func (l *Dropout) Name() string { return l.Label }

// Stateful implements Layer.
func (l *Dropout) Stateful() bool { return false }

// Build implements Layer.
func (l *Dropout) Build(inShape []int, _ *tensor.RNG) ([]int, error) {
	if l.P < 0 || l.P >= 1 {
		return nil, fmt.Errorf("layers: %s probability %v outside [0,1)", l.Label, l.P)
	}
	l.inShape = append([]int(nil), inShape...)
	return inShape, nil
}

// Params implements Layer.
func (l *Dropout) Params() []Param { return nil }

// BeginIteration samples a fresh mask for the coming iteration. Implements
// IterationLayer.
func (l *Dropout) BeginIteration(rng *tensor.RNG) {
	if l.P == 0 {
		l.mask = nil
		return
	}
	n := shapeVolume(l.inShape)
	l.mask = tensor.New(n)
	scale := 1 / (1 - l.P)
	for i := 0; i < n; i++ {
		if rng.Float32() >= l.P {
			l.mask.Data[i] = scale
		}
	}
}

// EndIteration clears the mask, returning the layer to identity
// (evaluation) behaviour.
func (l *Dropout) EndIteration() { l.mask = nil }

func (l *Dropout) applyMask(dst, src *tensor.Tensor) {
	b := src.Dim(0)
	n := src.Len() / b
	for img := 0; img < b; img++ {
		d := dst.Data[img*n : (img+1)*n]
		s := src.Data[img*n : (img+1)*n]
		for i := range d {
			d[i] = s[i] * l.mask.Data[i]
		}
	}
}

// Forward implements Layer.
func (l *Dropout) Forward(x *tensor.Tensor, _ *LayerState) *LayerState {
	o := tensor.New(x.Shape()...)
	if l.mask == nil {
		copy(o.Data, x.Data)
	} else {
		l.applyMask(o, x)
	}
	return &LayerState{O: o}
}

// Backward implements Layer.
func (l *Dropout) Backward(x *tensor.Tensor, _ *LayerState, gradOut *tensor.Tensor, _ *Delta) (*tensor.Tensor, *Delta) {
	gradIn := tensor.New(x.Shape()...)
	if l.mask == nil {
		copy(gradIn.Data, gradOut.Data)
	} else {
		l.applyMask(gradIn, gradOut)
	}
	return gradIn, nil
}

// StateBytes implements Layer.
func (l *Dropout) StateBytes(batch int) int64 {
	return 4 * int64(batch) * int64(shapeVolume(l.inShape))
}

// WorkspaceBytes implements Layer.
func (l *Dropout) WorkspaceBytes(int) int64 { return 0 }
