package layers

import (
	"fmt"

	"skipper/internal/tensor"
)

// MaxPool2D is index-routed spatial max pooling. It exists for ANN-style
// comparison stacks; spiking stacks normally use AvgPool2D (averaging
// preserves rate information where a max over binary spikes saturates).
//
// The argmax indices are part of the timestep record (they are needed to
// route the backward pass), so checkpoint recomputation regenerates them
// identically. They ride in the state's U slot encoded as float32 values —
// exactly the trick PyTorch's saved-tensor mechanism uses for pooling
// indices — and their bytes are accounted like any other activation.
type MaxPool2D struct {
	K     int
	Label string

	inShape  []int
	outShape []int
}

// NewMaxPool2D returns an unbuilt max-pooling layer.
func NewMaxPool2D(label string, k int) *MaxPool2D {
	return &MaxPool2D{K: k, Label: label}
}

// Name implements Layer.
func (l *MaxPool2D) Name() string { return l.Label }

// Stateful implements Layer.
func (l *MaxPool2D) Stateful() bool { return false }

// Build implements Layer.
func (l *MaxPool2D) Build(inShape []int, _ *tensor.RNG) ([]int, error) {
	if len(inShape) != 3 {
		return nil, fmt.Errorf("layers: %s expects [C,H,W] input, got %v", l.Label, inShape)
	}
	if l.K < 1 || inShape[1]%l.K != 0 || inShape[2]%l.K != 0 {
		return nil, fmt.Errorf("layers: %s window %d does not divide %dx%d", l.Label, l.K, inShape[1], inShape[2])
	}
	l.inShape = append([]int(nil), inShape...)
	l.outShape = []int{inShape[0], inShape[1] / l.K, inShape[2] / l.K}
	return l.outShape, nil
}

// Params implements Layer.
func (l *MaxPool2D) Params() []Param { return nil }

// Forward implements Layer. The record's U field carries the argmax
// indices.
func (l *MaxPool2D) Forward(x *tensor.Tensor, _ *LayerState) *LayerState {
	b := x.Dim(0)
	o := tensor.New(b, l.outShape[0], l.outShape[1], l.outShape[2])
	idx := make([]int32, o.Len())
	tensor.MaxPool2D(o, x, idx, l.K)
	idxT := tensor.New(o.Shape()...)
	for i, v := range idx {
		idxT.Data[i] = float32(v)
	}
	return &LayerState{U: idxT, O: o}
}

// Backward implements Layer.
func (l *MaxPool2D) Backward(x *tensor.Tensor, st *LayerState, gradOut *tensor.Tensor, _ *Delta) (*tensor.Tensor, *Delta) {
	idx := make([]int32, st.U.Len())
	for i, v := range st.U.Data {
		idx[i] = int32(v)
	}
	gradIn := tensor.New(x.Shape()...)
	tensor.MaxPool2DGrad(gradIn, gradOut, idx)
	return gradIn, nil
}

// StateBytes implements Layer: pooled output plus the index plane.
func (l *MaxPool2D) StateBytes(batch int) int64 {
	return 2 * 4 * int64(batch) * int64(shapeVolume(l.outShape))
}

// WorkspaceBytes implements Layer.
func (l *MaxPool2D) WorkspaceBytes(int) int64 { return 0 }
