package layers

import (
	"fmt"

	"skipper/internal/parallel"
	"skipper/internal/snn"
	"skipper/internal/tensor"
)

// ResidualBlock is the SNN basic block used by the ResNet topologies: two
// 3×3 spiking conv stages, with the shortcut current added into the second
// stage's synaptic input before its LIF neurons fire (the formulation of
// Sengupta et al. for deep spiking ResNets). When the block changes shape
// (stride > 1 or channel growth) the shortcut is a 1×1 convolution,
// otherwise the identity.
type ResidualBlock struct {
	Out       int
	Stride    int
	Neuron    snn.Params
	Surrogate snn.Surrogate
	Label     string

	spec1, spec2, specSC     tensor.ConvSpec
	w1, b1, w2, b2, wsc      *tensor.Tensor
	gw1, gb1, gw2, gb2, gwsc *tensor.Tensor
	identity                 bool

	inShape, midShape, outShape []int
	pool                        *parallel.Pool
	scratch                     *tensor.Scratch
	colLen                      int
	spikePack                   bool
}

// SetPool implements PoolAware.
func (l *ResidualBlock) SetPool(p *parallel.Pool) { l.pool = p }

// SetSpikePack implements SpikePackAware.
func (l *ResidualBlock) SetSpikePack(on bool) { l.spikePack = on }

// NewResidualBlock returns an unbuilt residual block producing out channels
// with the given first-stage stride.
func NewResidualBlock(label string, out, stride int, neuron snn.Params, surr snn.Surrogate) *ResidualBlock {
	return &ResidualBlock{Out: out, Stride: stride, Neuron: neuron, Surrogate: surr, Label: label}
}

// Name implements Layer.
func (l *ResidualBlock) Name() string { return l.Label }

// Stateful implements Layer.
func (l *ResidualBlock) Stateful() bool { return true }

// Build implements Layer.
func (l *ResidualBlock) Build(inShape []int, rng *tensor.RNG) ([]int, error) {
	if len(inShape) != 3 {
		return nil, fmt.Errorf("layers: %s expects [C,H,W] input, got %v", l.Label, inShape)
	}
	if err := l.Neuron.Validate(); err != nil {
		return nil, fmt.Errorf("layers: %s: %w", l.Label, err)
	}
	in := inShape[0]
	l.inShape = append([]int(nil), inShape...)
	l.spec1 = tensor.ConvSpec{InChannels: in, OutChannels: l.Out, KernelH: 3, KernelW: 3, Stride: l.Stride, Pad: 1}
	oh, ow := l.spec1.OutSize(inShape[1], inShape[2])
	if oh <= 0 || ow <= 0 {
		return nil, fmt.Errorf("layers: %s spatial output collapses", l.Label)
	}
	l.midShape = []int{l.Out, oh, ow}
	l.spec2 = tensor.ConvSpec{InChannels: l.Out, OutChannels: l.Out, KernelH: 3, KernelW: 3, Stride: 1, Pad: 1}
	l.outShape = []int{l.Out, oh, ow}

	l.w1 = tensor.New(l.Out, in, 3, 3)
	l.b1 = tensor.New(l.Out)
	l.w2 = tensor.New(l.Out, l.Out, 3, 3)
	l.b2 = tensor.New(l.Out)
	l.gw1 = tensor.New(l.Out, in, 3, 3)
	l.gb1 = tensor.New(l.Out)
	l.gw2 = tensor.New(l.Out, l.Out, 3, 3)
	l.gb2 = tensor.New(l.Out)
	rng.KaimingConv(l.w1)
	rng.KaimingConv(l.w2)

	l.identity = l.Stride == 1 && in == l.Out
	if !l.identity {
		l.specSC = tensor.ConvSpec{InChannels: in, OutChannels: l.Out, KernelH: 1, KernelW: 1, Stride: l.Stride, Pad: 0}
		l.wsc = tensor.New(l.Out, in, 1, 1)
		l.gwsc = tensor.New(l.Out, in, 1, 1)
		rng.KaimingConv(l.wsc)
	}
	n1 := l.spec1.ColBufLen(inShape[1], inShape[2])
	n2 := l.spec2.ColBufLen(oh, ow)
	n := n1
	if n2 > n {
		n = n2
	}
	l.colLen = n
	l.scratch = tensor.NewScratch()
	return l.outShape, nil
}

// Params implements Layer.
func (l *ResidualBlock) Params() []Param {
	ps := []Param{
		{Name: l.Label + ".conv1.weight", W: l.w1, G: l.gw1},
		{Name: l.Label + ".conv1.bias", W: l.b1, G: l.gb1},
		{Name: l.Label + ".conv2.weight", W: l.w2, G: l.gw2},
		{Name: l.Label + ".conv2.bias", W: l.b2, G: l.gb2},
	}
	if !l.identity {
		ps = append(ps, Param{Name: l.Label + ".shortcut.weight", W: l.wsc, G: l.gwsc})
	}
	return ps
}

// Forward implements Layer. State layout: top-level (U,O) is the second LIF
// stage; Sub[0] is the first LIF stage.
func (l *ResidualBlock) Forward(x *tensor.Tensor, prev *LayerState) *LayerState {
	b := x.Dim(0)
	u1 := tensor.New(b, l.midShape[0], l.midShape[1], l.midShape[2])
	tensor.Conv2D(l.pool, u1, x, l.w1, l.b1, l.spec1, l.scratch)
	return l.fire(u1, x, nil, prev, b)
}

// ForwardPacked implements PackedForward. The convolutions gather from the
// input spike bits; the identity shortcut adds the dense view (an
// elementwise add has nothing to gain from packing).
func (l *ResidualBlock) ForwardPacked(x *tensor.Tensor, xp *tensor.PackedSpikes, prev *LayerState) *LayerState {
	b := xp.Shape()[0]
	u1 := tensor.New(b, l.midShape[0], l.midShape[1], l.midShape[2])
	tensor.Conv2DPacked(l.pool, u1, xp, l.w1, l.b1, l.spec1, l.scratch)
	return l.fire(u1, x, xp, prev, b)
}

// fire runs both LIF stages and the shortcut from the first stage's synaptic
// current u1. x is the dense block input; xp is its packed view (nil on the
// dense path).
func (l *ResidualBlock) fire(u1, x *tensor.Tensor, xp *tensor.PackedSpikes, prev *LayerState, b int) *LayerState {
	o1 := tensor.New(b, l.midShape[0], l.midShape[1], l.midShape[2])
	var p1, p2 *LayerState
	if prev != nil {
		p1 = prev.Sub[0]
		p2 = prev
	}
	stepLIFPrev(l.pool, u1, o1, p1, l.Neuron)
	st1 := &LayerState{U: u1, O: o1}
	if l.spikePack {
		packOutput(st1, o1)
	}

	u2 := tensor.New(b, l.outShape[0], l.outShape[1], l.outShape[2])
	o2 := tensor.New(b, l.outShape[0], l.outShape[1], l.outShape[2])
	if st1.OPacked != nil {
		tensor.Conv2DPacked(l.pool, u2, st1.OPacked, l.w2, l.b2, l.spec2, l.scratch)
	} else {
		tensor.Conv2D(l.pool, u2, o1, l.w2, l.b2, l.spec2, l.scratch)
	}
	// Shortcut current joins before the second LIF.
	if l.identity {
		tensor.AXPY(u2, 1, x)
	} else {
		sc := tensor.New(b, l.outShape[0], l.outShape[1], l.outShape[2])
		if xp != nil {
			tensor.Conv2DPacked(l.pool, sc, xp, l.wsc, nil, l.specSC, l.scratch)
		} else {
			tensor.Conv2D(l.pool, sc, x, l.wsc, nil, l.specSC, l.scratch)
		}
		tensor.AXPY(u2, 1, sc)
	}
	stepLIFPrev(l.pool, u2, o2, p2, l.Neuron)
	st := &LayerState{U: u2, O: o2, Sub: []*LayerState{st1}}
	if l.spikePack {
		packOutput(st, o2)
	}
	return st
}

// Backward implements Layer, unwinding the two LIF stages and the shortcut.
func (l *ResidualBlock) Backward(x *tensor.Tensor, st *LayerState, gradOut *tensor.Tensor, deltaIn *Delta) (*tensor.Tensor, *Delta) {
	theta := l.Neuron.Threshold
	// Second stage: δ2 = σ'(U2)⊙gradOut + λ·δ2_{t+1}
	delta2 := tensor.New(st.U.Shape()...)
	var next2 *tensor.Tensor
	if deltaIn != nil {
		next2 = deltaIn.D
	}
	snn.SurrogateDelta(l.pool, delta2, st.U, gradOut, next2, theta, l.Neuron.Leak, l.Surrogate)
	st1 := st.Sub[0]
	// Main path through conv2 to the first stage's output.
	gradO1 := tensor.New(st1.OutShape()...)
	tensor.Conv2DGradInput(l.pool, gradO1, delta2, l.w2, l.spec2, l.scratch)
	l.gradWeightStage(l.gw2, l.gb2, delta2, st1, l.spec2)
	// Shortcut path straight to the block input.
	gradIn := tensor.New(x.Shape()...)
	if l.identity {
		copy(gradIn.Data, delta2.Data)
	} else {
		tensor.Conv2DGradInput(l.pool, gradIn, delta2, l.wsc, l.specSC, l.scratch)
		tensor.Conv2DGradWeight(l.pool, l.gwsc, nil, delta2, x, l.specSC, l.scratch)
	}
	// First stage: δ1 = σ'(U1)⊙gradO1 + λ·δ1_{t+1}
	delta1 := tensor.New(st1.U.Shape()...)
	var next1 *tensor.Tensor
	if deltaIn != nil && len(deltaIn.Sub) > 0 {
		next1 = deltaIn.Sub[0].D
	}
	snn.SurrogateDelta(l.pool, delta1, st1.U, gradO1, next1, theta, l.Neuron.Leak, l.Surrogate)
	gradMain := tensor.New(x.Shape()...)
	tensor.Conv2DGradInput(l.pool, gradMain, delta1, l.w1, l.spec1, l.scratch)
	tensor.Conv2DGradWeight(l.pool, l.gw1, l.gb1, delta1, x, l.spec1, l.scratch)
	tensor.AXPY(gradIn, 1, gradMain)
	return gradIn, &Delta{D: delta2, Sub: []*Delta{{D: delta1}}}
}

// BackwardPacked implements PackedBackward: both conv stages and the
// projection shortcut take their weight gradients straight from the packed
// spikes; the identity shortcut never touches the input at all.
func (l *ResidualBlock) BackwardPacked(xp *tensor.PackedSpikes, st *LayerState, gradOut *tensor.Tensor, deltaIn *Delta) (*tensor.Tensor, *Delta) {
	theta := l.Neuron.Threshold
	delta2 := tensor.New(st.U.Shape()...)
	var next2 *tensor.Tensor
	if deltaIn != nil {
		next2 = deltaIn.D
	}
	snn.SurrogateDelta(l.pool, delta2, st.U, gradOut, next2, theta, l.Neuron.Leak, l.Surrogate)
	st1 := st.Sub[0]
	gradO1 := tensor.New(st1.OutShape()...)
	tensor.Conv2DGradInput(l.pool, gradO1, delta2, l.w2, l.spec2, l.scratch)
	l.gradWeightStage(l.gw2, l.gb2, delta2, st1, l.spec2)
	gradIn := tensor.New(xp.Shape()...)
	if l.identity {
		copy(gradIn.Data, delta2.Data)
	} else {
		tensor.Conv2DGradInput(l.pool, gradIn, delta2, l.wsc, l.specSC, l.scratch)
		tensor.Conv2DGradWeightPacked(l.pool, l.gwsc, nil, delta2, xp, l.specSC, l.scratch)
	}
	delta1 := tensor.New(st1.U.Shape()...)
	var next1 *tensor.Tensor
	if deltaIn != nil && len(deltaIn.Sub) > 0 {
		next1 = deltaIn.Sub[0].D
	}
	snn.SurrogateDelta(l.pool, delta1, st1.U, gradO1, next1, theta, l.Neuron.Leak, l.Surrogate)
	gradMain := tensor.New(xp.Shape()...)
	tensor.Conv2DGradInput(l.pool, gradMain, delta1, l.w1, l.spec1, l.scratch)
	tensor.Conv2DGradWeightPacked(l.pool, l.gw1, l.gb1, delta1, xp, l.spec1, l.scratch)
	tensor.AXPY(gradIn, 1, gradMain)
	return gradIn, &Delta{D: delta2, Sub: []*Delta{{D: delta1}}}
}

// gradWeightStage accumulates one conv stage's weight gradient from a
// sub-state whose spikes may be packed, dense, or both (packed preferred:
// the kernels are bit-identical either way).
func (l *ResidualBlock) gradWeightStage(gw, gb, delta *tensor.Tensor, st1 *LayerState, spec tensor.ConvSpec) {
	if st1.OPacked != nil {
		tensor.Conv2DGradWeightPacked(l.pool, gw, gb, delta, st1.OPacked, spec, l.scratch)
		return
	}
	tensor.Conv2DGradWeight(l.pool, gw, gb, delta, st1.DenseO(), spec, l.scratch)
}

// StateBytes implements Layer: both stages' (U,O) per stored timestep.
func (l *ResidualBlock) StateBytes(batch int) int64 {
	return 2 * 4 * int64(batch) * int64(shapeVolume(l.midShape)+shapeVolume(l.outShape))
}

// WorkspaceBytes implements Layer. One column regardless of pool width; see
// SpikingConv2D.WorkspaceBytes.
func (l *ResidualBlock) WorkspaceBytes(int) int64 { return 4 * int64(l.colLen) }

// ConvCount returns the number of convolution layers in the block (2 or 3
// with a projection shortcut), used for topology reports.
func (l *ResidualBlock) ConvCount() int {
	if l.identity {
		return 2
	}
	return 3
}
