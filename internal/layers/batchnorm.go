package layers

import (
	"fmt"
	"math"

	"skipper/internal/tensor"
)

// TemporalBatchNorm normalises each channel over (batch, spatial) at every
// timestep — the tdBN recipe used by modern direct-SNN-training work. Its
// interaction with temporal checkpointing is the interesting part:
//
//   - the per-timestep batch statistics are a pure function of the input,
//     so a checkpointed recomputation reproduces them exactly and gradient
//     exactness is preserved (tested);
//   - the running statistics used at evaluation time, however, are a side
//     effect — they must be updated only by the *first* forward pass, or a
//     checkpointed run would double-count every recomputed timestep. The
//     network toggles BeginRecompute/EndRecompute around segment replays,
//     and this layer freezes its running-stat updates inside that window.
type TemporalBatchNorm struct {
	Label    string
	Eps      float32
	Momentum float32 // running-stat EMA factor; 0 means 0.9

	gamma, beta   *tensor.Tensor
	gGamma, gBeta *tensor.Tensor
	runMean       *tensor.Tensor
	runVar        *tensor.Tensor

	inShape   []int
	channels  int
	training  bool
	recompute bool
}

// NewTemporalBatchNorm returns an unbuilt normalisation layer.
func NewTemporalBatchNorm(label string) *TemporalBatchNorm {
	return &TemporalBatchNorm{Label: label}
}

// Name implements Layer.
func (l *TemporalBatchNorm) Name() string { return l.Label }

// Stateful implements Layer (no membrane state).
func (l *TemporalBatchNorm) Stateful() bool { return false }

// Build implements Layer.
func (l *TemporalBatchNorm) Build(inShape []int, _ *tensor.RNG) ([]int, error) {
	if len(inShape) != 3 {
		return nil, fmt.Errorf("layers: %s expects [C,H,W] input, got %v", l.Label, inShape)
	}
	l.inShape = append([]int(nil), inShape...)
	l.channels = inShape[0]
	if l.Eps == 0 {
		l.Eps = 1e-5
	}
	if l.Momentum == 0 {
		l.Momentum = 0.9
	}
	l.gamma = tensor.New(l.channels)
	l.gamma.Fill(1)
	l.beta = tensor.New(l.channels)
	l.gGamma = tensor.New(l.channels)
	l.gBeta = tensor.New(l.channels)
	l.runMean = tensor.New(l.channels)
	l.runVar = tensor.New(l.channels)
	l.runVar.Fill(1)
	return inShape, nil
}

// Params implements Layer.
func (l *TemporalBatchNorm) Params() []Param {
	return []Param{
		{Name: l.Label + ".gamma", W: l.gamma, G: l.gGamma},
		{Name: l.Label + ".beta", W: l.beta, G: l.gBeta},
	}
}

// BeginIteration implements IterationLayer: the layer is in training mode
// for the duration of the iteration.
func (l *TemporalBatchNorm) BeginIteration(*tensor.RNG) { l.training = true }

// EndIteration returns the layer to evaluation mode (running statistics).
func (l *TemporalBatchNorm) EndIteration() { l.training = false }

// SetRecompute implements RecomputeAware: inside a checkpoint replay the
// normalisation still uses per-batch statistics (so the replay is
// bit-identical) but running-stat updates are frozen.
func (l *TemporalBatchNorm) SetRecompute(on bool) { l.recompute = on }

// channelStats computes per-channel mean and variance over batch+spatial.
func (l *TemporalBatchNorm) channelStats(x *tensor.Tensor) (mean, variance []float64) {
	b := x.Dim(0)
	hw := x.Len() / b / l.channels
	n := float64(b * hw)
	mean = make([]float64, l.channels)
	variance = make([]float64, l.channels)
	for img := 0; img < b; img++ {
		for c := 0; c < l.channels; c++ {
			base := (img*l.channels + c) * hw
			for i := 0; i < hw; i++ {
				mean[c] += float64(x.Data[base+i])
			}
		}
	}
	for c := range mean {
		mean[c] /= n
	}
	for img := 0; img < b; img++ {
		for c := 0; c < l.channels; c++ {
			base := (img*l.channels + c) * hw
			for i := 0; i < hw; i++ {
				d := float64(x.Data[base+i]) - mean[c]
				variance[c] += d * d
			}
		}
	}
	for c := range variance {
		variance[c] /= n
	}
	return mean, variance
}

// Forward implements Layer. The state's U slot stashes the per-timestep
// (mean, invStd) pairs needed by the backward pass, shaped [2, C].
func (l *TemporalBatchNorm) Forward(x *tensor.Tensor, _ *LayerState) *LayerState {
	b := x.Dim(0)
	hw := x.Len() / b / l.channels
	o := tensor.New(x.Shape()...)
	stash := tensor.New(2, l.channels)

	var mean, variance []float64
	if l.training {
		mean, variance = l.channelStats(x)
		if !l.recompute {
			// First pass only: fold into the running statistics.
			for c := 0; c < l.channels; c++ {
				l.runMean.Data[c] = l.Momentum*l.runMean.Data[c] + (1-l.Momentum)*float32(mean[c])
				l.runVar.Data[c] = l.Momentum*l.runVar.Data[c] + (1-l.Momentum)*float32(variance[c])
			}
		}
	} else {
		mean = make([]float64, l.channels)
		variance = make([]float64, l.channels)
		for c := 0; c < l.channels; c++ {
			mean[c] = float64(l.runMean.Data[c])
			variance[c] = float64(l.runVar.Data[c])
		}
	}
	for c := 0; c < l.channels; c++ {
		invStd := 1 / math.Sqrt(variance[c]+float64(l.Eps))
		stash.Data[c] = float32(mean[c])
		stash.Data[l.channels+c] = float32(invStd)
		g, bta := l.gamma.Data[c], l.beta.Data[c]
		for img := 0; img < b; img++ {
			base := (img*l.channels + c) * hw
			for i := 0; i < hw; i++ {
				xh := (x.Data[base+i] - float32(mean[c])) * float32(invStd)
				o.Data[base+i] = g*xh + bta
			}
		}
	}
	return &LayerState{U: stash, O: o}
}

// Backward implements Layer: the standard batch-norm gradient using the
// stashed per-timestep statistics.
func (l *TemporalBatchNorm) Backward(x *tensor.Tensor, st *LayerState, gradOut *tensor.Tensor, _ *Delta) (*tensor.Tensor, *Delta) {
	b := x.Dim(0)
	hw := x.Len() / b / l.channels
	n := float32(b * hw)
	gradIn := tensor.New(x.Shape()...)
	for c := 0; c < l.channels; c++ {
		mean := st.U.Data[c]
		invStd := st.U.Data[l.channels+c]
		// Channel reductions: Σdy and Σdy·x̂.
		var sumDy, sumDyXh float32
		for img := 0; img < b; img++ {
			base := (img*l.channels + c) * hw
			for i := 0; i < hw; i++ {
				dy := gradOut.Data[base+i]
				xh := (x.Data[base+i] - mean) * invStd
				sumDy += dy
				sumDyXh += dy * xh
			}
		}
		l.gBeta.Data[c] += sumDy
		l.gGamma.Data[c] += sumDyXh
		coef := l.gamma.Data[c] * invStd
		for img := 0; img < b; img++ {
			base := (img*l.channels + c) * hw
			for i := 0; i < hw; i++ {
				dy := gradOut.Data[base+i]
				xh := (x.Data[base+i] - mean) * invStd
				gradIn.Data[base+i] = coef * (dy - sumDy/n - xh*sumDyXh/n)
			}
		}
	}
	return gradIn, nil
}

// StateBytes implements Layer: the normalised output plus the tiny stash.
func (l *TemporalBatchNorm) StateBytes(batch int) int64 {
	return 4 * (int64(batch)*int64(shapeVolume(l.inShape)) + 2*int64(l.channels))
}

// WorkspaceBytes implements Layer.
func (l *TemporalBatchNorm) WorkspaceBytes(int) int64 { return 0 }

// RecomputeAware is implemented by layers whose forward has side effects
// that must fire only on the first pass (e.g. batch-norm running
// statistics). Strategies toggle it around checkpoint replays.
type RecomputeAware interface {
	SetRecompute(on bool)
}

// RunningMean exposes a copy of the running channel means (for tests and
// diagnostics).
func (l *TemporalBatchNorm) RunningMean() []float32 {
	return append([]float32(nil), l.runMean.Data...)
}

// Buffers implements BufferedLayer: the running statistics are persistent
// non-trainable state that a checkpoint/resume cycle must carry.
func (l *TemporalBatchNorm) Buffers() []tensor.Named {
	return []tensor.Named{
		{Name: l.Label + ".running_mean", T: l.runMean},
		{Name: l.Label + ".running_var", T: l.runVar},
	}
}
