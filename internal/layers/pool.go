package layers

import (
	"fmt"

	"skipper/internal/tensor"
)

// AvgPool2D is a stateless spatial average-pooling layer with window and
// stride k. SNN stacks pool spike trains with average pooling so that rate
// information survives (max pooling over binary spikes is nearly saturating).
type AvgPool2D struct {
	K     int
	Label string

	inShape  []int
	outShape []int
}

// NewAvgPool2D returns an unbuilt average-pooling layer.
func NewAvgPool2D(label string, k int) *AvgPool2D {
	return &AvgPool2D{K: k, Label: label}
}

// Name implements Layer.
func (l *AvgPool2D) Name() string { return l.Label }

// Stateful implements Layer.
func (l *AvgPool2D) Stateful() bool { return false }

// Build implements Layer.
func (l *AvgPool2D) Build(inShape []int, _ *tensor.RNG) ([]int, error) {
	if len(inShape) != 3 {
		return nil, fmt.Errorf("layers: %s expects [C,H,W] input, got %v", l.Label, inShape)
	}
	if l.K < 1 || inShape[1]%l.K != 0 || inShape[2]%l.K != 0 {
		return nil, fmt.Errorf("layers: %s window %d does not divide %dx%d", l.Label, l.K, inShape[1], inShape[2])
	}
	l.inShape = append([]int(nil), inShape...)
	l.outShape = []int{inShape[0], inShape[1] / l.K, inShape[2] / l.K}
	return l.outShape, nil
}

// Params implements Layer.
func (l *AvgPool2D) Params() []Param { return nil }

// Forward implements Layer.
func (l *AvgPool2D) Forward(x *tensor.Tensor, _ *LayerState) *LayerState {
	b := x.Dim(0)
	o := tensor.New(b, l.outShape[0], l.outShape[1], l.outShape[2])
	tensor.AvgPool2D(o, x, l.K)
	return &LayerState{O: o}
}

// Backward implements Layer.
func (l *AvgPool2D) Backward(x *tensor.Tensor, _ *LayerState, gradOut *tensor.Tensor, _ *Delta) (*tensor.Tensor, *Delta) {
	gradIn := tensor.New(x.Shape()...)
	tensor.AvgPool2DGrad(gradIn, gradOut, l.K)
	return gradIn, nil
}

// StateBytes implements Layer: the pooled output per stored timestep.
func (l *AvgPool2D) StateBytes(batch int) int64 {
	return 4 * int64(batch) * int64(shapeVolume(l.outShape))
}

// WorkspaceBytes implements Layer.
func (l *AvgPool2D) WorkspaceBytes(int) int64 { return 0 }

// GlobalAvgPool collapses [B,C,H,W] to [B,C], the head of ResNet stacks.
type GlobalAvgPool struct {
	Label   string
	inShape []int
}

// NewGlobalAvgPool returns an unbuilt global average-pooling layer.
func NewGlobalAvgPool(label string) *GlobalAvgPool { return &GlobalAvgPool{Label: label} }

// Name implements Layer.
func (l *GlobalAvgPool) Name() string { return l.Label }

// Stateful implements Layer.
func (l *GlobalAvgPool) Stateful() bool { return false }

// Build implements Layer.
func (l *GlobalAvgPool) Build(inShape []int, _ *tensor.RNG) ([]int, error) {
	if len(inShape) != 3 {
		return nil, fmt.Errorf("layers: %s expects [C,H,W] input, got %v", l.Label, inShape)
	}
	l.inShape = append([]int(nil), inShape...)
	return []int{inShape[0]}, nil
}

// Params implements Layer.
func (l *GlobalAvgPool) Params() []Param { return nil }

// Forward implements Layer.
func (l *GlobalAvgPool) Forward(x *tensor.Tensor, _ *LayerState) *LayerState {
	b := x.Dim(0)
	o := tensor.New(b, l.inShape[0])
	tensor.GlobalAvgPool2D(o, x)
	return &LayerState{O: o}
}

// Backward implements Layer.
func (l *GlobalAvgPool) Backward(x *tensor.Tensor, _ *LayerState, gradOut *tensor.Tensor, _ *Delta) (*tensor.Tensor, *Delta) {
	gradIn := tensor.New(x.Shape()...)
	tensor.GlobalAvgPool2DGrad(gradIn, gradOut)
	return gradIn, nil
}

// StateBytes implements Layer.
func (l *GlobalAvgPool) StateBytes(batch int) int64 {
	return 4 * int64(batch) * int64(l.inShape[0])
}

// WorkspaceBytes implements Layer.
func (l *GlobalAvgPool) WorkspaceBytes(int) int64 { return 0 }
