// Package layers implements the spiking network layers and their analytic
// BPTT backward passes (paper Eq. 2). A network is a sequence of layers;
// each timestep's forward produces a per-layer state record (U_t, o_t) — the
// "activations" whose storage the paper's checkpointing and time-skipping
// techniques manipulate — and the backward pass consumes those records while
// carrying the per-layer error signal δ_t backward through time.
package layers

import (
	"skipper/internal/tensor"
)

// LayerState is the temporal record a layer produces at one timestep: the
// membrane potential U_t (nil for stateless layers), the output o_t, and the
// sub-states of composite layers (residual blocks).
type LayerState struct {
	U *tensor.Tensor
	O *tensor.Tensor
	// OPacked is the bit-packed view of the spike output when the network
	// runs in spike-pack mode. Freshly computed states carry both O and
	// OPacked; a lazily materialised checkpoint boundary record carries ONLY
	// OPacked (O nil) until DenseO expands it on demand, so packed-aware
	// layers can recompute straight from the bits.
	OPacked *tensor.PackedSpikes
	// Sub holds internal states of composite layers, e.g. the first LIF of a
	// residual block.
	Sub []*LayerState
}

// DenseO returns the dense spike output, expanding and caching the packed
// form the first time a lazy record's O is actually needed. Nil only for a
// state that has neither representation.
func (s *LayerState) DenseO() *tensor.Tensor {
	if s.O == nil && s.OPacked != nil {
		s.O = s.OPacked.Unpack()
	}
	return s.O
}

// OutShape returns the output shape without forcing a lazy record dense.
func (s *LayerState) OutShape() []int {
	if s.O != nil {
		return s.O.Shape()
	}
	if s.OPacked != nil {
		return s.OPacked.Shape()
	}
	return nil
}

// Bytes returns the storage footprint of the record in bytes; this is what
// gets charged to the Activations category when a timestep is saved.
func (s *LayerState) Bytes() int64 {
	if s == nil {
		return 0
	}
	var n int64
	if s.U != nil {
		n += s.U.Bytes()
	}
	// OPacked alongside a dense O is a transient compute view, not extra
	// stored activation; only a lazy record (O nil) is charged at its packed
	// size.
	if s.O != nil {
		n += s.O.Bytes()
	} else if s.OPacked != nil {
		n += s.OPacked.Bytes()
	}
	for _, sub := range s.Sub {
		n += sub.Bytes()
	}
	return n
}

// SpikeSum returns the total number of spikes in the record including
// sub-states — the per-layer contribution to the SAM metric s_t (Eq. 4).
func (s *LayerState) SpikeSum() float64 {
	if s == nil {
		return 0
	}
	var sum float64
	if s.O != nil {
		for _, v := range s.O.Data {
			sum += float64(v)
		}
	} else if s.OPacked != nil {
		// A popcount over the packed bits equals the float spike-sum exactly
		// (spikes are 0/1 and integer counts are exact in float64).
		sum += float64(s.OPacked.Count())
	}
	for _, sub := range s.Sub {
		sum += sub.SpikeSum()
	}
	return sum
}

// Delta carries the backward-through-time error signal δ_t = ∂L/∂U_t for a
// layer (and its sub-layers), to be consumed at timestep t−1.
type Delta struct {
	D   *tensor.Tensor
	Sub []*Delta
}

// Param is a trainable parameter with its gradient accumulator.
type Param struct {
	Name string
	W    *tensor.Tensor
	G    *tensor.Tensor
}

// Layer is one stage of a spiking network. Implementations must make Forward
// a pure function of (x, prev) within one training iteration so that
// checkpoint recomputation reproduces the original states exactly.
type Layer interface {
	// Name identifies the layer for reports and parameter naming.
	Name() string

	// Build validates the per-sample input shape (e.g. [C,H,W] or [F]),
	// allocates parameters using rng, and returns the per-sample output
	// shape.
	Build(inShape []int, rng *tensor.RNG) ([]int, error)

	// Params returns the trainable parameters (empty for stateless layers).
	Params() []Param

	// Stateful reports whether the layer integrates membrane state over
	// time. The count of stateful layers is the L_n of the paper's
	// T/C > L_n constraint.
	Stateful() bool

	// Forward advances one timestep: x is the input [B, inShape...], prev is
	// this layer's state at t−1 (nil at t = 0). The returned state always
	// has O set.
	Forward(x *tensor.Tensor, prev *LayerState) *LayerState

	// Backward consumes ∂L/∂o_t (gradOut), the stored state st, the layer
	// input x at time t, and the δ_{t+1} carried from the future (deltaIn,
	// nil at t = T−1), accumulating parameter gradients and returning
	// ∂L/∂x_t and the δ_t to carry to t−1 (nil for stateless layers).
	Backward(x *tensor.Tensor, st *LayerState, gradOut *tensor.Tensor, deltaIn *Delta) (gradIn *tensor.Tensor, deltaOut *Delta)

	// StateBytes returns the per-timestep record footprint for a batch of
	// the given size, used for device-memory accounting.
	StateBytes(batch int) int64

	// WorkspaceBytes returns the transient scratch footprint (im2col
	// buffers) for a batch of the given size.
	WorkspaceBytes(batch int) int64
}

// IterationLayer is implemented by layers with per-iteration randomness
// (dropout). The trainer calls BeginIteration once per batch; the sampled
// state is then frozen for the whole iteration, including checkpoint
// recomputation, so the recomputed forward pass is identical to the first.
type IterationLayer interface {
	BeginIteration(rng *tensor.RNG)
}

// shapeVolume multiplies the dims of a per-sample shape.
func shapeVolume(shape []int) int {
	n := 1
	for _, d := range shape {
		n *= d
	}
	return n
}
