package layers

import (
	"math"
	"testing"

	"skipper/internal/snn"
	"skipper/internal/tensor"
)

func builtBN(t *testing.T, c, h, w int) *TemporalBatchNorm {
	t.Helper()
	l := NewTemporalBatchNorm("bn")
	if _, err := l.Build([]int{c, h, w}, tensor.NewRNG(1)); err != nil {
		t.Fatal(err)
	}
	return l
}

func TestBatchNormNormalises(t *testing.T) {
	l := builtBN(t, 3, 4, 4)
	l.BeginIteration(nil)
	r := tensor.NewRNG(3)
	x := tensor.New(4, 3, 4, 4)
	r.FillNorm(x, 2, 3) // far from standardised
	st := l.Forward(x, nil)
	// Per channel: mean ~0, var ~1 (γ=1, β=0 at init).
	b, hw := 4, 16
	for c := 0; c < 3; c++ {
		var mean, sq float64
		for img := 0; img < b; img++ {
			base := (img*3 + c) * hw
			for i := 0; i < hw; i++ {
				v := float64(st.O.Data[base+i])
				mean += v
				sq += v * v
			}
		}
		n := float64(b * hw)
		mean /= n
		variance := sq/n - mean*mean
		if math.Abs(mean) > 1e-4 {
			t.Fatalf("channel %d mean %v, want ~0", c, mean)
		}
		if math.Abs(variance-1) > 1e-2 {
			t.Fatalf("channel %d var %v, want ~1", c, variance)
		}
	}
}

func TestBatchNormAffineParams(t *testing.T) {
	l := builtBN(t, 2, 2, 2)
	if len(l.Params()) != 2 {
		t.Fatal("BN must expose gamma and beta")
	}
	l.BeginIteration(nil)
	l.gamma.Fill(2)
	l.beta.Fill(5)
	x := tensor.New(2, 2, 2, 2)
	tensor.NewRNG(4).FillNorm(x, 0, 1)
	st := l.Forward(x, nil)
	// y = 2·x̂ + 5, so the per-channel mean of y is 5.
	var mean float64
	for _, v := range st.O.Data {
		mean += float64(v)
	}
	mean /= float64(st.O.Len())
	if math.Abs(mean-5) > 1e-3 {
		t.Fatalf("affine mean %v, want 5", mean)
	}
}

// Finite-difference check of the full BN backward (input gradient and the
// affine parameter gradients) — BN is smooth, so FD applies directly.
func TestBatchNormBackwardFiniteDiff(t *testing.T) {
	l := builtBN(t, 2, 2, 2)
	l.BeginIteration(nil)
	r := tensor.NewRNG(7)
	x := tensor.New(2, 2, 2, 2)
	r.FillNorm(x, 1, 2)
	probe := tensor.New(2, 2, 2, 2)
	r.FillNorm(probe, 0, 1)
	r.FillUniform(l.gamma, 0.5, 1.5)
	r.FillUniform(l.beta, -0.5, 0.5)

	loss := func() float64 {
		st := l.Forward(x, nil)
		return float64(tensor.Dot(st.O, probe))
	}
	st := l.Forward(x, nil)
	l.gGamma.Zero()
	l.gBeta.Zero()
	gradIn, d := l.Backward(x, st, probe, nil)
	if d != nil {
		t.Fatal("BN is stateless; delta must be nil")
	}
	eps := float32(1e-2)
	for i := 0; i < x.Len(); i += 3 {
		old := x.Data[i]
		x.Data[i] = old + eps
		lp := loss()
		x.Data[i] = old - eps
		lm := loss()
		x.Data[i] = old
		fd := (lp - lm) / (2 * float64(eps))
		if math.Abs(fd-float64(gradIn.Data[i])) > 2e-2 {
			t.Fatalf("BN grad-input[%d] = %v, finite-diff %v", i, gradIn.Data[i], fd)
		}
	}
	for i := 0; i < l.gamma.Len(); i++ {
		old := l.gamma.Data[i]
		l.gamma.Data[i] = old + eps
		lp := loss()
		l.gamma.Data[i] = old - eps
		lm := loss()
		l.gamma.Data[i] = old
		fd := (lp - lm) / (2 * float64(eps))
		if math.Abs(fd-float64(l.gGamma.Data[i])) > 2e-2 {
			t.Fatalf("BN grad-gamma[%d] = %v, finite-diff %v", i, l.gGamma.Data[i], fd)
		}
	}
}

func TestBatchNormRunningStatsFrozenDuringRecompute(t *testing.T) {
	l := builtBN(t, 2, 2, 2)
	l.BeginIteration(nil)
	r := tensor.NewRNG(9)
	x := tensor.New(2, 2, 2, 2)
	r.FillNorm(x, 1, 2)

	first := l.Forward(x, nil)
	mean1 := append([]float32(nil), l.runMean.Data...)

	// Replay: output identical, running stats untouched.
	l.SetRecompute(true)
	replay := l.Forward(x, nil)
	l.SetRecompute(false)
	for i := range first.O.Data {
		if first.O.Data[i] != replay.O.Data[i] {
			t.Fatal("BN replay diverged from the first pass")
		}
	}
	for i := range mean1 {
		if l.runMean.Data[i] != mean1[i] {
			t.Fatal("recompute updated the running statistics")
		}
	}
	// A genuine second pass does update them.
	l.Forward(x, nil)
	moved := false
	for i := range mean1 {
		if l.runMean.Data[i] != mean1[i] {
			moved = true
		}
	}
	if !moved {
		t.Fatal("first-pass forward should update running stats")
	}
}

func TestBatchNormEvalUsesRunningStats(t *testing.T) {
	l := builtBN(t, 1, 2, 2)
	l.BeginIteration(nil)
	x := tensor.New(2, 1, 2, 2)
	tensor.NewRNG(11).FillNorm(x, 3, 1)
	for i := 0; i < 80; i++ {
		l.Forward(x, nil) // converge the EMA running stats to the batch stats
	}
	l.EndIteration()
	evalOut := l.Forward(x, nil)
	// Eval output should be near-standardised since running stats ≈ batch
	// stats after repeated updates.
	var mean float64
	for _, v := range evalOut.O.Data {
		mean += float64(v)
	}
	mean /= float64(evalOut.O.Len())
	if math.Abs(mean) > 0.2 {
		t.Fatalf("eval-mode mean %v, want ~0", mean)
	}
}

func TestBatchNormInSpikingNetwork(t *testing.T) {
	nrn := snn.Params{Leak: 0.9, Threshold: 0.8}
	net := NewNetwork("bn-net", []int{2, 8, 8},
		NewSpikingConv2D("c1", 4, 3, 1, 1, nrn, snn.Triangle{}),
		NewTemporalBatchNorm("bn1"),
		NewSpikingConv2D("c2", 4, 3, 1, 1, nrn, snn.Triangle{}),
		NewReadout("out", 3, nrn),
	)
	if err := net.Build(tensor.NewRNG(13)); err != nil {
		t.Fatal(err)
	}
	net.BeginIteration(tensor.NewRNG(1))
	x := tensor.New(2, 2, 8, 8)
	tensor.NewRNG(14).FillUniform(x, 0, 1.5)
	states := net.ForwardStep(x, nil)
	states = net.ForwardStep(x, states)
	dl := tensor.New(2, 3)
	dl.Fill(0.3)
	net.ZeroGrads()
	net.BackwardStep(x, states, map[int]*tensor.Tensor{3: dl}, nil)
	var bnGrad float32
	for _, p := range net.Params() {
		if p.Name == "bn1.gamma" {
			bnGrad = tensor.Norm2(p.G)
		}
	}
	if bnGrad == 0 {
		t.Fatal("BN affine parameters received no gradient")
	}
	net.EndIteration()
	if (interface{})(net.Layers[1].(*TemporalBatchNorm)).(*TemporalBatchNorm).training {
		t.Fatal("EndIteration did not reach the BN layer")
	}
}
