package layers

import (
	"testing"
	"testing/quick"

	"skipper/internal/snn"
	"skipper/internal/tensor"
)

// Property: for any input magnitude and any number of steps, every spiking
// layer's output stays binary and its membrane stays finite.
func TestNetworkSpikesBinaryProperty(t *testing.T) {
	f := func(seed uint64, stepsRaw, ampRaw uint8) bool {
		steps := int(stepsRaw%6) + 1
		amp := float32(ampRaw%8) + 0.5
		nrn := snn.Params{Leak: 0.9, Threshold: 1}
		net := NewNetwork("prop", []int{2, 8, 8},
			NewSpikingConv2D("c1", 4, 3, 1, 1, nrn, snn.Triangle{}),
			NewAvgPool2D("p1", 2),
			NewSpikingConv2D("c2", 4, 3, 1, 1, nrn, snn.Triangle{}),
			NewReadout("out", 3, nrn),
		)
		if err := net.Build(tensor.NewRNG(seed)); err != nil {
			return false
		}
		r := tensor.NewRNG(seed ^ 0xABCD)
		x := tensor.New(1, 2, 8, 8)
		r.FillUniform(x, 0, amp)
		var states []*LayerState
		for s := 0; s < steps; s++ {
			states = net.ForwardStep(x, states)
			for i, st := range states {
				if _, isReadout := net.Layers[i].(*SpikingLinear); isReadout {
					continue
				}
				if st.U != nil && !st.U.IsFinite() {
					return false
				}
				if _, pool := net.Layers[i].(*AvgPool2D); pool {
					continue // pooled spikes are fractional averages
				}
				for _, v := range st.O.Data {
					if v != 0 && v != 1 {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: SpikeSum equals the sum over layers of individual spike counts
// and is invariant under state cloning.
func TestSpikeSumConsistencyProperty(t *testing.T) {
	f := func(seed uint64) bool {
		nrn := snn.Params{Leak: 0.9, Threshold: 0.8}
		net := NewNetwork("prop", []int{1, 6, 6},
			NewSpikingConv2D("c1", 3, 3, 1, 1, nrn, snn.Triangle{}),
			NewReadout("out", 2, nrn),
		)
		if err := net.Build(tensor.NewRNG(seed)); err != nil {
			return false
		}
		x := tensor.New(2, 1, 6, 6)
		tensor.NewRNG(seed+1).FillUniform(x, 0, 2)
		states := net.ForwardStep(x, nil)
		total := net.SpikeSum(states)
		manual := float64(tensor.CountNonZero(states[0].O))
		return total == manual
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: Backward is linear in the output gradient — doubling gradOut
// doubles gradIn (the δ recursion is linear once the forward is fixed).
func TestBackwardLinearityProperty(t *testing.T) {
	f := func(seed uint64) bool {
		nrn := snn.Params{Leak: 0.9, Threshold: 0.8}
		l := NewSpikingConv2D("c", 3, 3, 1, 1, nrn, snn.FastSigmoid{})
		if _, err := l.Build([]int{2, 6, 6}, tensor.NewRNG(seed)); err != nil {
			return false
		}
		r := tensor.NewRNG(seed + 7)
		x := tensor.New(1, 2, 6, 6)
		r.FillUniform(x, 0, 1.5)
		st := l.Forward(x, nil)
		g := tensor.New(st.O.Shape()...)
		r.FillNorm(g, 0, 1)

		l.gradW.Zero()
		l.gradB.Zero()
		gi1, _ := l.Backward(x, st, g, nil)
		g2 := g.Clone()
		tensor.Scale(g2, g2, 2)
		l.gradW.Zero()
		l.gradB.Zero()
		gi2, _ := l.Backward(x, st, g2, nil)
		for i := range gi1.Data {
			d := gi2.Data[i] - 2*gi1.Data[i]
			if d > 1e-4 || d < -1e-4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: state records report a positive, additive byte footprint.
func TestStateBytesAdditiveProperty(t *testing.T) {
	f := func(a, b uint8) bool {
		u := tensor.New(int(a%16) + 1)
		o := tensor.New(int(b%16) + 1)
		st := &LayerState{U: u, O: o, Sub: []*LayerState{{O: o.Clone()}}}
		return st.Bytes() == u.Bytes()+2*o.Bytes()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
