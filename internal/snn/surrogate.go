package snn

import (
	"fmt"
	"math"

	"skipper/internal/parallel"
	"skipper/internal/tensor"
)

// Surrogate is a smooth stand-in for the derivative of the Heaviside spike
// function, evaluated at membrane potential u against threshold θ. Different
// choices trade gradient sharpness against stability; all peak at u = θ.
type Surrogate interface {
	// Grad returns σ'(u) given threshold theta.
	Grad(u, theta float32) float32
	// Name identifies the surrogate for configs and reports.
	Name() string
}

// Triangle is the piecewise-linear surrogate
// σ'(u) = max(0, 1 − |u−θ|/γ) / γ, the choice used by the STBP/hybrid
// training line of work the paper builds on.
type Triangle struct {
	// Gamma is the half-width of the triangle; 0 means θ.
	Gamma float32
}

// Grad implements Surrogate.
func (s Triangle) Grad(u, theta float32) float32 {
	g := s.Gamma
	if g == 0 {
		g = theta
	}
	d := u - theta
	if d < 0 {
		d = -d
	}
	v := 1 - d/g
	if v < 0 {
		return 0
	}
	return v / g
}

// Name implements Surrogate.
func (s Triangle) Name() string { return "triangle" }

// FastSigmoid is σ'(u) = 1 / (1 + k|u−θ|)², the SuperSpike surrogate
// (Zenke & Ganguli).
type FastSigmoid struct {
	// Slope is k; 0 means 10.
	Slope float32
}

// Grad implements Surrogate.
func (s FastSigmoid) Grad(u, theta float32) float32 {
	k := s.Slope
	if k == 0 {
		k = 10
	}
	d := u - theta
	if d < 0 {
		d = -d
	}
	den := 1 + k*d
	return 1 / (den * den)
}

// Name implements Surrogate.
func (s FastSigmoid) Name() string { return "fastsigmoid" }

// ATan is σ'(u) = α / (2(1 + (π α (u−θ)/2)²)), the arctangent surrogate.
type ATan struct {
	// Alpha controls sharpness; 0 means 2.
	Alpha float32
}

// Grad implements Surrogate.
func (s ATan) Grad(u, theta float32) float32 {
	a := s.Alpha
	if a == 0 {
		a = 2
	}
	x := float64(math.Pi) / 2 * float64(a) * float64(u-theta)
	return float32(float64(a) / 2 / (1 + x*x))
}

// Name implements Surrogate.
func (s ATan) Name() string { return "atan" }

// Rectangular is σ'(u) = 1[|u−θ| < w/2] / w, the boxcar surrogate.
type Rectangular struct {
	// Width is w; 0 means 1.
	Width float32
}

// Grad implements Surrogate.
func (s Rectangular) Grad(u, theta float32) float32 {
	w := s.Width
	if w == 0 {
		w = 1
	}
	d := u - theta
	if d < 0 {
		d = -d
	}
	if d < w/2 {
		return 1 / w
	}
	return 0
}

// Name implements Surrogate.
func (s Rectangular) Name() string { return "rectangular" }

// ByName returns the surrogate with default parameters for a config string.
func ByName(name string) (Surrogate, error) {
	switch name {
	case "", "triangle":
		return Triangle{}, nil
	case "fastsigmoid":
		return FastSigmoid{}, nil
	case "atan":
		return ATan{}, nil
	case "rectangular":
		return Rectangular{}, nil
	default:
		return nil, fmt.Errorf("snn: unknown surrogate %q", name)
	}
}

// SurrogateGrad fills dst[i] = s.Grad(u[i], theta) elementwise.
func SurrogateGrad(pool *parallel.Pool, dst, u *tensor.Tensor, theta float32, s Surrogate) {
	if dst.Len() != u.Len() {
		panic("snn: SurrogateGrad size mismatch")
	}
	dd, ud := dst.Data, u.Data
	pool.RunGrain(len(ud), elemGrain, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			dd[i] = s.Grad(ud[i], theta)
		}
	})
}

// SurrogateDelta is the fused BPTT membrane-delta kernel every spiking layer
// runs each backward timestep:
//
//	delta[i] = s.Grad(u[i], theta) · gradOut[i]            (deltaNext == nil)
//	delta[i] = s.Grad(u[i], theta)·gradOut[i] + leak·deltaNext[i]
//
// The second form adds the λ-decayed membrane path from the later timestep.
// The arithmetic per element is (surrogate·grad) then (+ leak·next) — the
// same two rounding steps the layers' former Grad-loop + AXPY pair produced,
// so checkpoint replays of old runs stay bit-identical. delta may alias
// deltaNext (the layers reuse one buffer across timesteps).
func SurrogateDelta(pool *parallel.Pool, delta, u, gradOut, deltaNext *tensor.Tensor, theta, leak float32, s Surrogate) {
	n := delta.Len()
	if u.Len() != n || gradOut.Len() != n {
		panic("snn: SurrogateDelta size mismatch")
	}
	dd, ud, gd := delta.Data, u.Data, gradOut.Data
	if deltaNext == nil {
		pool.RunGrain(n, elemGrain, func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				dd[i] = s.Grad(ud[i], theta) * gd[i]
			}
		})
		return
	}
	if deltaNext.Len() != n {
		panic("snn: SurrogateDelta size mismatch")
	}
	nd := deltaNext.Data
	pool.RunGrain(n, elemGrain, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			dd[i] = s.Grad(ud[i], theta)*gd[i] + leak*nd[i]
		}
	})
}
