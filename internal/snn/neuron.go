// Package snn implements the spiking-neuron substrate: the discrete-time
// leaky-integrate-and-fire (LIF) dynamics of paper Eq. 1 and the surrogate
// gradients that make the thresholding non-linearity differentiable for BPTT
// (paper Eq. 2, following Neftci et al.).
package snn

import (
	"fmt"

	"skipper/internal/parallel"
	"skipper/internal/tensor"
)

// elemGrain floors per-lane work for the elementwise neuron kernels: below a
// few thousand neurons the goroutine handoff outweighs the arithmetic. Every
// element's update is self-contained, so the floor (like the pool size)
// cannot change results.
const elemGrain = 4096

// ResetMode selects how the membrane reacts to the neuron's own spike.
type ResetMode int

const (
	// ResetSubtract is the paper's Eq. 1 soft reset: θ is subtracted from
	// the membrane after a spike (the default).
	ResetSubtract ResetMode = iota
	// ResetZero is the hard reset used by some LIF variants: a spiking
	// neuron's membrane restarts from zero.
	ResetZero
)

// Params holds the non-trainable neuron parameters shared by a layer.
type Params struct {
	// Leak is λ in Eq. 1, the membrane potential decay per timestep (< 1).
	Leak float32
	// Threshold is θ in Eq. 1, the firing threshold.
	Threshold float32
	// Reset selects the post-spike reset behaviour (default: subtract θ).
	Reset ResetMode
}

// DefaultParams returns the neuron constants used throughout the evaluation:
// λ = 0.95, θ = 1.0 (typical for the hybrid-training recipe of Rathi et al.).
func DefaultParams() Params {
	return Params{Leak: 0.95, Threshold: 1.0}
}

// Validate returns an error when the parameters are outside the stable
// regime (0 < λ ≤ 1, θ > 0).
func (p Params) Validate() error {
	if p.Leak <= 0 || p.Leak > 1 {
		return fmt.Errorf("snn: leak %v outside (0,1]", p.Leak)
	}
	if p.Threshold <= 0 {
		return fmt.Errorf("snn: threshold %v must be positive", p.Threshold)
	}
	return nil
}

// StepLIF advances one LIF timestep per Eq. 1:
//
//	U_t = λ·U_{t-1} + I_t − θ·o_{t-1}
//	o_t = 1 if U_t > θ else 0
//
// where I_t is the layer's synaptic input current (W·o_t^{l-1}, already
// computed by the layer). u and o receive the new state; uPrev/oPrev are the
// previous state (pass nil for t = 0, meaning zero initial state). u may
// alias current; o must not alias u. The neuron range partitions across pool
// lanes (nil pool = serial); each neuron's update is self-contained, so
// results are bit-identical for every pool size.
func StepLIF(pool *parallel.Pool, u, o, uPrev, oPrev, current *tensor.Tensor, p Params) {
	n := u.Len()
	if o.Len() != n || current.Len() != n {
		panic(fmt.Sprintf("snn: StepLIF size mismatch u=%d o=%d current=%d", n, o.Len(), current.Len()))
	}
	ud, od, cd := u.Data, o.Data, current.Data
	theta := p.Threshold
	lam := p.Leak
	if uPrev == nil {
		pool.RunGrain(n, elemGrain, func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				v := cd[i]
				ud[i] = v
				if v > theta {
					od[i] = 1
				} else {
					od[i] = 0
				}
			}
		})
		return
	}
	if uPrev.Len() != n || oPrev == nil || oPrev.Len() != n {
		panic("snn: StepLIF previous-state size mismatch")
	}
	upd, opd := uPrev.Data, oPrev.Data
	if p.Reset == ResetZero {
		pool.RunGrain(n, elemGrain, func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				v := lam*upd[i]*(1-opd[i]) + cd[i]
				ud[i] = v
				if v > theta {
					od[i] = 1
				} else {
					od[i] = 0
				}
			}
		})
		return
	}
	pool.RunGrain(n, elemGrain, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			v := lam*upd[i] + cd[i] - theta*opd[i]
			ud[i] = v
			if v > theta {
				od[i] = 1
			} else {
				od[i] = 0
			}
		}
	})
}

// Fire computes o = 1[u > θ] elementwise without touching membrane state.
func Fire(pool *parallel.Pool, o, u *tensor.Tensor, theta float32) {
	if o.Len() != u.Len() {
		panic("snn: Fire size mismatch")
	}
	od, ud := o.Data, u.Data
	pool.RunGrain(len(ud), elemGrain, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			if ud[i] > theta {
				od[i] = 1
			} else {
				od[i] = 0
			}
		}
	})
}

// SpikeCount returns the number of spikes in o (sum of a binary tensor).
// This is the per-layer contribution to the SAM spike-sum s_t (paper Eq. 4).
func SpikeCount(o *tensor.Tensor) float64 {
	var s float64
	for _, v := range o.Data {
		s += float64(v)
	}
	return s
}
