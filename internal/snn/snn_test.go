package snn

import (
	"math"
	"testing"
	"testing/quick"

	"skipper/internal/tensor"
)

func TestDefaultParamsValid(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestParamsValidate(t *testing.T) {
	bad := []Params{
		{Leak: 0, Threshold: 1},
		{Leak: 1.5, Threshold: 1},
		{Leak: 0.9, Threshold: 0},
		{Leak: 0.9, Threshold: -1},
	}
	for _, p := range bad {
		if p.Validate() == nil {
			t.Fatalf("Params %+v should be invalid", p)
		}
	}
	if (Params{Leak: 1, Threshold: 0.5}).Validate() != nil {
		t.Fatal("λ=1 (no leak) should be valid")
	}
}

func TestStepLIFInitialStep(t *testing.T) {
	p := Params{Leak: 0.9, Threshold: 1}
	cur := tensor.FromSlice([]float32{0.5, 1.5, 1.0}, 3)
	u := tensor.New(3)
	o := tensor.New(3)
	StepLIF(nil, u, o, nil, nil, cur, p)
	// t=0: U = I, spike iff U > θ (strict)
	want := []float32{0, 1, 0}
	for i := range want {
		if o.Data[i] != want[i] {
			t.Fatalf("o = %v, want %v", o.Data, want)
		}
		if u.Data[i] != cur.Data[i] {
			t.Fatalf("u = %v, want %v", u.Data, cur.Data)
		}
	}
}

func TestStepLIFDynamicsMatchEquation1(t *testing.T) {
	p := Params{Leak: 0.8, Threshold: 1}
	uPrev := tensor.FromSlice([]float32{2.0, 0.5}, 2)
	oPrev := tensor.FromSlice([]float32{1, 0}, 2)
	cur := tensor.FromSlice([]float32{0.3, 0.7}, 2)
	u := tensor.New(2)
	o := tensor.New(2)
	StepLIF(nil, u, o, uPrev, oPrev, cur, p)
	// U[0] = 0.8*2.0 + 0.3 - 1*1 = 0.9 -> no spike
	// U[1] = 0.8*0.5 + 0.7 - 0   = 1.1 -> spike
	if math.Abs(float64(u.Data[0])-0.9) > 1e-6 || o.Data[0] != 0 {
		t.Fatalf("neuron 0: u=%v o=%v", u.Data[0], o.Data[0])
	}
	if math.Abs(float64(u.Data[1])-1.1) > 1e-6 || o.Data[1] != 1 {
		t.Fatalf("neuron 1: u=%v o=%v", u.Data[1], o.Data[1])
	}
}

func TestStepLIFResetLowersPotential(t *testing.T) {
	// A neuron that spiked at t-1 has θ subtracted at t (soft reset).
	p := Params{Leak: 1, Threshold: 1}
	uPrev := tensor.FromSlice([]float32{1.5}, 1)
	oPrev := tensor.FromSlice([]float32{1}, 1)
	cur := tensor.New(1)
	u, o := tensor.New(1), tensor.New(1)
	StepLIF(nil, u, o, uPrev, oPrev, cur, p)
	if math.Abs(float64(u.Data[0])-0.5) > 1e-6 {
		t.Fatalf("reset: u = %v, want 0.5", u.Data[0])
	}
}

func TestStepLIFSizeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	StepLIF(nil, tensor.New(2), tensor.New(3), nil, nil, tensor.New(2), DefaultParams())
}

func TestFireStrictThreshold(t *testing.T) {
	u := tensor.FromSlice([]float32{0.99, 1.0, 1.01}, 3)
	o := tensor.New(3)
	Fire(nil, o, u, 1.0)
	if o.Data[0] != 0 || o.Data[1] != 0 || o.Data[2] != 1 {
		t.Fatalf("Fire = %v; threshold must be strict (>)", o.Data)
	}
}

func TestSpikeCount(t *testing.T) {
	o := tensor.FromSlice([]float32{1, 0, 1, 1}, 4)
	if got := SpikeCount(o); got != 3 {
		t.Fatalf("SpikeCount = %v, want 3", got)
	}
}

// Property: without input current and without spiking, the membrane decays
// geometrically and never goes negative from a positive start.
func TestLeakDecayProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := tensor.NewRNG(seed)
		p := Params{Leak: 0.5 + 0.5*r.Float32()*0.99, Threshold: 10} // high θ: never spikes
		u := tensor.New(4)
		o := tensor.New(4)
		r.FillUniform(u, 0, 5)
		zero := tensor.New(4)
		oPrev := tensor.New(4)
		prev := u.Clone()
		for step := 0; step < 20; step++ {
			StepLIF(nil, u, o, prev, oPrev, zero, p)
			for i := range u.Data {
				want := p.Leak * prev.Data[i]
				if math.Abs(float64(u.Data[i]-want)) > 1e-5 {
					return false
				}
				if u.Data[i] < 0 {
					return false
				}
			}
			tensor.Copy(prev, u)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: spikes are always binary.
func TestSpikesBinaryProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := tensor.NewRNG(seed)
		p := DefaultParams()
		n := 16
		u, o := tensor.New(n), tensor.New(n)
		uPrev, oPrev := tensor.New(n), tensor.New(n)
		cur := tensor.New(n)
		r.FillNorm(uPrev, 0, 2)
		for i := range oPrev.Data {
			oPrev.Data[i] = r.Bernoulli(0.5)
		}
		r.FillNorm(cur, 0, 2)
		StepLIF(nil, u, o, uPrev, oPrev, cur, p)
		for _, v := range o.Data {
			if v != 0 && v != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSurrogatesPeakAtThreshold(t *testing.T) {
	theta := float32(1.0)
	surrs := []Surrogate{Triangle{}, FastSigmoid{}, ATan{}, Rectangular{}}
	for _, s := range surrs {
		peak := s.Grad(theta, theta)
		if peak <= 0 {
			t.Fatalf("%s: peak %v not positive", s.Name(), peak)
		}
		for _, off := range []float32{0.3, 0.7, 2.0} {
			if g := s.Grad(theta+off, theta); g > peak {
				t.Fatalf("%s: grad at +%v (%v) exceeds peak %v", s.Name(), off, g, peak)
			}
			if g := s.Grad(theta-off, theta); g > peak {
				t.Fatalf("%s: grad at -%v exceeds peak", s.Name(), off)
			}
		}
	}
}

func TestSurrogatesSymmetric(t *testing.T) {
	theta := float32(1.0)
	for _, s := range []Surrogate{Triangle{}, FastSigmoid{}, ATan{}, Rectangular{}} {
		for _, d := range []float32{0.1, 0.5, 1.5} {
			a, b := s.Grad(theta+d, theta), s.Grad(theta-d, theta)
			if math.Abs(float64(a-b)) > 1e-6 {
				t.Fatalf("%s not symmetric at ±%v: %v vs %v", s.Name(), d, a, b)
			}
		}
	}
}

func TestTriangleSupport(t *testing.T) {
	s := Triangle{Gamma: 0.5}
	if g := s.Grad(1.6, 1.0); g != 0 {
		t.Fatalf("triangle outside support = %v, want 0", g)
	}
	if g := s.Grad(1.0, 1.0); math.Abs(float64(g)-2) > 1e-6 {
		t.Fatalf("triangle peak = %v, want 1/γ = 2", g)
	}
}

func TestRectangularSupport(t *testing.T) {
	s := Rectangular{Width: 1}
	if g := s.Grad(1.49, 1.0); g != 1 {
		t.Fatalf("rect inside = %v, want 1", g)
	}
	if g := s.Grad(1.51, 1.0); g != 0 {
		t.Fatalf("rect outside = %v, want 0", g)
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"triangle", "fastsigmoid", "atan", "rectangular", ""} {
		s, err := ByName(name)
		if err != nil || s == nil {
			t.Fatalf("ByName(%q) failed: %v", name, err)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("ByName should reject unknown names")
	}
}

func TestSurrogateGradVectorised(t *testing.T) {
	u := tensor.FromSlice([]float32{0.5, 1.0, 1.5}, 3)
	dst := tensor.New(3)
	s := Triangle{}
	SurrogateGrad(nil, dst, u, 1.0, s)
	for i, v := range u.Data {
		if dst.Data[i] != s.Grad(v, 1.0) {
			t.Fatalf("SurrogateGrad[%d] mismatch", i)
		}
	}
}

// Property: the fast-sigmoid surrogate integrates to a sigmoid-like mass;
// numerically its grad should decrease monotonically away from θ.
func TestSurrogateMonotoneDecay(t *testing.T) {
	for _, s := range []Surrogate{Triangle{}, FastSigmoid{}, ATan{}} {
		prev := s.Grad(1.0, 1.0)
		for d := float32(0.05); d < 3; d += 0.05 {
			g := s.Grad(1.0+d, 1.0)
			if g > prev+1e-7 {
				t.Fatalf("%s increased away from threshold at d=%v", s.Name(), d)
			}
			prev = g
		}
	}
}

func TestStepLIFZeroReset(t *testing.T) {
	p := Params{Leak: 1, Threshold: 1, Reset: ResetZero}
	uPrev := tensor.FromSlice([]float32{1.5, 0.6}, 2)
	oPrev := tensor.FromSlice([]float32{1, 0}, 2)
	cur := tensor.FromSlice([]float32{0.2, 0.2}, 2)
	u, o := tensor.New(2), tensor.New(2)
	StepLIF(nil, u, o, uPrev, oPrev, cur, p)
	// Spiked neuron restarts from zero: U = 0 + 0.2.
	if math.Abs(float64(u.Data[0])-0.2) > 1e-6 {
		t.Fatalf("zero reset: u = %v, want 0.2", u.Data[0])
	}
	// Quiet neuron integrates normally: U = 0.6 + 0.2.
	if math.Abs(float64(u.Data[1])-0.8) > 1e-6 {
		t.Fatalf("non-spiking neuron: u = %v, want 0.8", u.Data[1])
	}
}

func TestResetModesDiffer(t *testing.T) {
	mk := func(mode ResetMode) float32 {
		p := Params{Leak: 0.9, Threshold: 1, Reset: mode}
		uPrev := tensor.FromSlice([]float32{2.0}, 1)
		oPrev := tensor.FromSlice([]float32{1}, 1)
		cur := tensor.New(1)
		u, o := tensor.New(1), tensor.New(1)
		StepLIF(nil, u, o, uPrev, oPrev, cur, p)
		return u.Data[0]
	}
	sub, zero := mk(ResetSubtract), mk(ResetZero)
	// Subtract: 0.9*2 - 1 = 0.8; Zero: 0.
	if math.Abs(float64(sub)-0.8) > 1e-6 || zero != 0 {
		t.Fatalf("reset modes: subtract=%v zero=%v", sub, zero)
	}
}
