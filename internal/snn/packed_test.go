package snn

import (
	"fmt"
	"testing"

	"skipper/internal/parallel"
	"skipper/internal/tensor"
)

// spikeFill writes a deterministic 0/1 pattern at roughly the given density.
func spikeFill(d []float32, seed uint64, density float64) {
	s := seed*0x9E3779B97F4A7C15 + 1
	thr := uint64(density * float64(1<<32))
	for i := range d {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		if s&0xFFFFFFFF < thr {
			d[i] = 1
		} else {
			d[i] = 0
		}
	}
}

// StepLIFPacked must be bit-identical to StepLIF on the unpacked previous
// spikes — for both reset modes, at every pool width, across sparsity
// regimes including all-zero words (the fast path) and all-one tensors.
func TestStepLIFPackedBitIdentical(t *testing.T) {
	sizes := []int{1, 63, 64, 65, 100, elemGrain + 3}
	densities := []float64{0, 0.02, 0.5, 1}
	pools := []*parallel.Pool{nil, parallel.NewPool(2), parallel.NewPool(4)}
	defer pools[1].Close()
	defer pools[2].Close()
	for _, n := range sizes {
		cur := tensor.New(n)
		uPrev := tensor.New(n)
		oPrev := tensor.New(n)
		equivFill(cur.Data, 3)
		equivFill(uPrev.Data, 5)
		for di, density := range densities {
			spikeFill(oPrev.Data, uint64(di+9), density)
			packed, ok := tensor.PackSpikes(oPrev)
			if !ok {
				t.Fatal("binary spike tensor must pack")
			}
			for _, reset := range []ResetMode{ResetSubtract, ResetZero} {
				p := DefaultParams()
				p.Reset = reset
				uD, oD := tensor.New(n), tensor.New(n)
				StepLIF(nil, uD, oD, uPrev, oPrev, cur, p)
				for pi, pool := range pools {
					label := fmt.Sprintf("[n=%d d=%v reset=%d pool=%d]", n, density, reset, pi)
					uP, oP := tensor.New(n), tensor.New(n)
					StepLIFPacked(pool, uP, oP, uPrev, packed, cur, p)
					requireBitEqual(t, "StepLIFPacked u"+label, uD, uP)
					requireBitEqual(t, "StepLIFPacked o"+label, oD, oP)
				}
			}
		}
	}
}

// The nil-previous-state delegate must match StepLIF's t=0 path.
func TestStepLIFPackedInitialStep(t *testing.T) {
	const n = 130
	cur := tensor.New(n)
	equivFill(cur.Data, 17)
	p := DefaultParams()
	uD, oD := tensor.New(n), tensor.New(n)
	StepLIF(nil, uD, oD, nil, nil, cur, p)
	uP, oP := tensor.New(n), tensor.New(n)
	StepLIFPacked(nil, uP, oP, nil, nil, cur, p)
	requireBitEqual(t, "StepLIFPacked(t=0) u", uD, uP)
	requireBitEqual(t, "StepLIFPacked(t=0) o", oD, oP)
}
