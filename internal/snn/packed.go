package snn

import (
	"fmt"

	"skipper/internal/parallel"
	"skipper/internal/tensor"
)

// StepLIFPacked is StepLIF with the previous spike plane o_{t-1} in
// bit-packed form, so a lazily materialised checkpoint record can drive the
// recurrence without ever expanding its spikes back to float32.
//
// Results are bit-identical to StepLIF on the unpacked spikes: where a word
// holds a mix of spikes the update evaluates the exact dense expression with
// the bit expanded to 0.0/1.0, and where a 64-neuron word is all zero the
// reset term vanishes as an IEEE-754 identity (x − θ·0 = x and x·(1−0) = x
// for every float x including signed zeros), so the whole word takes the
// spike-free fast path after a single integer compare.
func StepLIFPacked(pool *parallel.Pool, u, o, uPrev *tensor.Tensor, oPrev *tensor.PackedSpikes, current *tensor.Tensor, p Params) {
	n := u.Len()
	if o.Len() != n || current.Len() != n {
		panic(fmt.Sprintf("snn: StepLIFPacked size mismatch u=%d o=%d current=%d", n, o.Len(), current.Len()))
	}
	if uPrev == nil {
		StepLIF(pool, u, o, nil, nil, current, p)
		return
	}
	if uPrev.Len() != n || oPrev == nil || oPrev.Len() != n {
		panic("snn: StepLIFPacked previous-state size mismatch")
	}
	ud, od, cd := u.Data, o.Data, current.Data
	upd := uPrev.Data
	theta, lam := p.Threshold, p.Leak
	resetZero := p.Reset == ResetZero
	words := oPrev.Words()
	nw := (n + 63) >> 6
	// Partition whole words so the zero-word fast path never straddles a
	// lane boundary; every element's update is self-contained, so the
	// partition cannot change results.
	pool.RunGrain(nw, elemGrain>>6, func(_, wlo, whi int) {
		for wi := wlo; wi < whi; wi++ {
			w := words[wi]
			lo := wi << 6
			hi := lo + 64
			if hi > n {
				hi = n
			}
			if w == 0 {
				for i := lo; i < hi; i++ {
					v := lam*upd[i] + cd[i]
					ud[i] = v
					if v > theta {
						od[i] = 1
					} else {
						od[i] = 0
					}
				}
				continue
			}
			if resetZero {
				for i := lo; i < hi; i++ {
					var ov float32
					if w&(1<<uint(i&63)) != 0 {
						ov = 1
					}
					v := lam*upd[i]*(1-ov) + cd[i]
					ud[i] = v
					if v > theta {
						od[i] = 1
					} else {
						od[i] = 0
					}
				}
				continue
			}
			for i := lo; i < hi; i++ {
				var ov float32
				if w&(1<<uint(i&63)) != 0 {
					ov = 1
				}
				v := lam*upd[i] + cd[i] - theta*ov
				ud[i] = v
				if v > theta {
					od[i] = 1
				} else {
					od[i] = 0
				}
			}
		}
	})
}
