package snn

import (
	"fmt"
	"testing"

	"skipper/internal/parallel"
	"skipper/internal/tensor"
)

// The elementwise neuron kernels share the tensor kernels' contract: pooled
// runs are bit-identical to serial at every lane count, including sizes
// below the elemGrain work floor.

func equivFill(d []float32, seed uint64) {
	s := seed*0x9E3779B97F4A7C15 + 1
	for i := range d {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		d[i] = float32(s%4096)/1024 - 2 // spans both sides of θ = 1
	}
}

func requireBitEqual(t *testing.T, name string, serial, pooled *tensor.Tensor) {
	t.Helper()
	for i, v := range serial.Data {
		if v != pooled.Data[i] {
			t.Fatalf("%s: element %d differs: serial %v, pooled %v", name, i, v, pooled.Data[i])
		}
	}
}

func TestNeuronKernelsBitIdenticalAcrossPoolSizes(t *testing.T) {
	sizes := []int{1, 7, 100, elemGrain - 1, elemGrain + 3, 3*elemGrain + 17}
	for _, lanes := range []int{2, 3, 4} {
		pool := parallel.NewPool(lanes)
		defer pool.Close()
		for _, n := range sizes {
			label := fmt.Sprintf("[n=%d]@%d lanes", n, lanes)
			cur := tensor.New(n)
			uPrev := tensor.New(n)
			oPrev := tensor.New(n)
			equivFill(cur.Data, 3)
			equivFill(uPrev.Data, 5)
			Fire(nil, oPrev, uPrev, 0.5)

			for _, reset := range []ResetMode{ResetSubtract, ResetZero} {
				p := DefaultParams()
				p.Reset = reset
				uS, oS := tensor.New(n), tensor.New(n)
				uP, oP := tensor.New(n), tensor.New(n)
				StepLIF(nil, uS, oS, uPrev, oPrev, cur, p)
				StepLIF(pool, uP, oP, uPrev, oPrev, cur, p)
				requireBitEqual(t, fmt.Sprintf("StepLIF(reset=%d)%s u", reset, label), uS, uP)
				requireBitEqual(t, fmt.Sprintf("StepLIF(reset=%d)%s o", reset, label), oS, oP)

				// t = 0: zero initial state.
				StepLIF(nil, uS, oS, nil, nil, cur, p)
				StepLIF(pool, uP, oP, nil, nil, cur, p)
				requireBitEqual(t, "StepLIF(t=0)"+label, uS, uP)
			}

			gS, gP := tensor.New(n), tensor.New(n)
			SurrogateGrad(nil, gS, uPrev, 1.0, Triangle{})
			SurrogateGrad(pool, gP, uPrev, 1.0, Triangle{})
			requireBitEqual(t, "SurrogateGrad"+label, gS, gP)

			gradOut := tensor.New(n)
			next := tensor.New(n)
			equivFill(gradOut.Data, 7)
			equivFill(next.Data, 11)
			dS, dP := tensor.New(n), tensor.New(n)
			SurrogateDelta(nil, dS, uPrev, gradOut, next, 1.0, 0.95, Triangle{})
			SurrogateDelta(pool, dP, uPrev, gradOut, next, 1.0, 0.95, Triangle{})
			requireBitEqual(t, "SurrogateDelta"+label, dS, dP)
			SurrogateDelta(nil, dS, uPrev, gradOut, nil, 1.0, 0.95, Triangle{})
			SurrogateDelta(pool, dP, uPrev, gradOut, nil, 1.0, 0.95, Triangle{})
			requireBitEqual(t, "SurrogateDelta(nil next)"+label, dS, dP)
		}
	}
}
