package skipper

import (
	"errors"
	"testing"
)

// TestPublicAPIEndToEnd drives the facade exactly the way the README's
// quick-start does.
func TestPublicAPIEndToEnd(t *testing.T) {
	data, err := OpenDataset("cifar10", 1)
	if err != nil {
		t.Fatal(err)
	}
	net, err := BuildModel("customnet", ModelOptions{
		Width: 0.5, Classes: data.Classes(), InShape: data.InShape(),
	})
	if err != nil {
		t.Fatal(err)
	}
	dev := NewDevice(DeviceConfig{})
	tr, err := NewTrainer(net, data, Skipper{C: 2, P: 20}, Config{
		T: 16, Batch: 4, Device: dev, MaxBatchesPerEpoch: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	ep, err := tr.TrainEpoch()
	if err != nil {
		t.Fatal(err)
	}
	if ep.Batches != 2 || ep.N != 8 {
		t.Fatalf("epoch stats %+v", ep)
	}
	_, acc, err := tr.Evaluate(2)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0 || acc > 1 {
		t.Fatalf("accuracy %v", acc)
	}
	if dev.PeakBy(MemActivations) == 0 {
		t.Fatal("device saw no activation traffic")
	}
	if FormatBytes(dev.PeakReserved()) == "" {
		t.Fatal("FormatBytes broken")
	}
}

func TestPublicRegistries(t *testing.T) {
	if len(ModelNames()) != 7 {
		t.Fatalf("ModelNames = %v", ModelNames())
	}
	if len(DatasetNames()) != 6 {
		t.Fatalf("DatasetNames = %v", DatasetNames())
	}
	for _, name := range ModelNames() {
		if _, err := BuildModel(name, ModelOptions{Width: 0.25}); err != nil {
			t.Fatalf("BuildModel(%q): %v", name, err)
		}
	}
	for _, name := range DatasetNames() {
		if _, err := OpenDataset(name, 1); err != nil {
			t.Fatalf("OpenDataset(%q): %v", name, err)
		}
	}
}

func TestPublicOOMDetection(t *testing.T) {
	data, err := OpenDataset("cifar10", 1)
	if err != nil {
		t.Fatal(err)
	}
	net, err := BuildModel("customnet", ModelOptions{
		Width: 0.5, Classes: data.Classes(), InShape: data.InShape(),
	})
	if err != nil {
		t.Fatal(err)
	}
	dev := NewDevice(DeviceConfig{Budget: 64 << 10}) // far too small
	tr, err := NewTrainer(net, data, BPTT{}, Config{T: 16, Batch: 4, Device: dev, MaxBatchesPerEpoch: 1})
	if err == nil {
		// Persistent state fit; the unrolled activations cannot.
		defer tr.Close()
		_, err = tr.TrainEpoch()
	}
	if err == nil {
		t.Fatal("expected OOM under a 64 KiB budget")
	}
	if !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("error %v should unwrap to ErrOutOfMemory", err)
	}
}

func TestPublicMaxSkipPercent(t *testing.T) {
	if got := MaxSkipPercent(100, 4, 6); got != 76 {
		t.Fatalf("MaxSkipPercent = %v, want 76", got)
	}
}

func TestPublicPretrainAndDataParallel(t *testing.T) {
	data, err := OpenDataset("cifar10", 1)
	if err != nil {
		t.Fatal(err)
	}
	net, err := BuildModel("customnet", ModelOptions{
		Width: 0.5, Classes: data.Classes(), InShape: data.InShape(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := Pretrain(net, data, PretrainConfig{Epochs: 1, BatchesPerEpoch: 2, Batch: 4}); err != nil {
		t.Fatal(err)
	}
	dp, err := NewDataParallel(2, func(i int) (*Trainer, error) {
		n, err := BuildModel("customnet", ModelOptions{
			Width: 0.5, Classes: data.Classes(), InShape: data.InShape(),
		})
		if err != nil {
			return nil, err
		}
		return NewTrainer(n, data, Checkpoint{C: 2}, Config{T: 12, Batch: 2})
	})
	if err != nil {
		t.Fatal(err)
	}
	defer dp.Close()
	if _, err := dp.TrainBatchIndices(TrainSplit, []int{0, 1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if !dp.InSync() {
		t.Fatal("replicas diverged")
	}
}
