#!/bin/sh
# verify.sh — the repo's full verification gate:
#   build, vet, race-test the serving subsystem, full test suite,
#   then the serving benchmark (writes BENCH_serve.json).
set -eux

cd "$(dirname "$0")"

go build ./...
go vet ./...
go test -race ./internal/serve/...
go test ./...

go run ./cmd/skipper-bench -exp bench_serve -scale tiny
