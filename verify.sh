#!/bin/sh
# verify.sh — the repo's full verification gate:
#   build, vet, race-test the concurrency-sensitive subsystems, full test
#   suite, the SIGKILL+resume smoke test, then the serving benchmark
#   (writes BENCH_serve.json).
set -eux

cd "$(dirname "$0")"

go build ./...
go vet ./...
go test -race ./internal/serve/... ./internal/runstate/... ./internal/faults/...
go test ./...

sh ./scripts/kill_resume_smoke.sh

go run ./cmd/skipper-bench -exp bench_serve -scale tiny
