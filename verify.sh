#!/bin/sh
# verify.sh — the repo's full verification gate:
#   build, vet, race-test the concurrency-sensitive subsystems, full test
#   suite, the SIGKILL+resume smoke test, then the serving and kernel
#   benchmarks (write BENCH_serve.json and BENCH_kernels.json).
set -eux

cd "$(dirname "$0")"

go build ./...
go vet ./...
go test -race ./internal/parallel/... ./internal/tensor/... ./internal/serve/... ./internal/runstate/... ./internal/faults/...
go test ./...

sh ./scripts/kill_resume_smoke.sh

go run ./cmd/skipper-bench -exp bench_serve -scale tiny

# Kernel smoke: serial-vs-pooled GFLOP/s with bit-identity checks. On a
# machine with >= 2 cores, -require-speedup fails the gate if the pooled
# matmul is not faster than serial (a 1-core box has nothing to win, so the
# flag is a no-op there).
go run ./cmd/skipper-bench -exp bench_kernels -scale tiny -require-speedup
