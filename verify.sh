#!/bin/sh
# verify.sh — the repo's full verification gate:
#   build, vet, race-test the concurrency-sensitive subsystems, full test
#   suite, the SIGKILL+resume, distributed-training, serving-fleet, and
#   streaming-session smoke tests, then the serving, kernel, trace-overhead,
#   distributed, fleet-routing, spike-pack, and streaming benchmarks (write
#   BENCH_serve.json, BENCH_kernels.json, BENCH_trace.json, BENCH_dist.json,
#   BENCH_router.json, BENCH_spikepack.json, BENCH_stream.json).
set -eux

cd "$(dirname "$0")"

go build ./...
go vet ./...
go test -race ./internal/parallel/... ./internal/tensor/... ./internal/serve/... ./internal/runstate/... ./internal/faults/... ./internal/trace/... ./internal/dist/... ./internal/router/... ./internal/stream/...
go test ./...

sh ./scripts/kill_resume_smoke.sh

# Distributed smoke: coordinator + 2 workers over localhost TCP, once per
# exchange topology (star, and ring with delta-compressed frames) — every
# rank must end with weights byte-identical to a serial micro-batch-1 run.
sh ./scripts/dist_smoke.sh

# Serving-fleet smoke: 3 replicas behind skipper-router, open-loop soak,
# one replica killed mid-soak, a 5% canary promoted — zero failed requests.
sh ./scripts/router_smoke.sh

# Replicated-router smoke: 3 peered routers over 3 replicas; kill -9 one
# router and SIGTERM (drain handoff) one replica mid-soak — zero failed
# requests, clean drain, survivors converge on one fleet view within 2s.
sh ./scripts/router_ha_smoke.sh

# Streaming-session smoke: 2 replicas with durable session dirs behind a
# router, paced event streams through placement, SIGTERM one replica
# mid-stream — every session resumes on the survivor with zero membrane
# resets and the quiet windows take the leak-only skip path.
sh ./scripts/stream_smoke.sh

go run ./cmd/skipper-bench -exp bench_serve -scale tiny

# Kernel smoke: serial-vs-pooled GFLOP/s with bit-identity checks. On a
# machine with >= 2 cores, -require-speedup fails the gate if the pooled
# matmul is not faster than serial (a 1-core box has nothing to win, so the
# flag is a no-op there).
go run ./cmd/skipper-bench -exp bench_kernels -scale tiny -require-speedup

# Spike-pack smoke: bit-packed AND+popcount kernels vs dense float. Hard
# gates (always enforced): bit-identity at every density and pool width,
# end-to-end packed training bit-identical to dense, and >= 8x byte
# reduction on the spike operand.
go run ./cmd/skipper-bench -exp bench_spikepack -scale tiny

# Trace-overhead smoke: the nil-tracer path must stay free (always a hard
# gate) and the traced capped epoch within 2% of plain (a timing gate, so —
# like the kernel speedup above — it only fails the run when
# -require-speedup is passed; add it on quiet machines).
go run ./cmd/skipper-bench -exp bench_trace -scale tiny

# Distributed scaling smoke: real coordinator/worker wire protocol over
# in-process pipes; writes measured step/exchange times vs the all-reduce
# model's prediction.
go run ./cmd/skipper-bench -exp bench_dist -scale tiny

# Fleet-routing smoke: steady-state p50/p99 vs replica count, latency during
# a replica kill and across a canary promote (both with zero failures), and
# shed-tier behavior at overload; writes BENCH_router.json.
go run ./cmd/skipper-bench -exp bench_router -scale tiny

# Streaming smoke: session latency and skipped-window fraction at quiet and
# busy event densities, skip-on vs skip-off bitwise identity, and the
# export/import migration pause; writes BENCH_stream.json.
go run ./cmd/skipper-bench -exp bench_stream -scale tiny
