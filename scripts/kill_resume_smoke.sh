#!/bin/sh
# kill_resume_smoke.sh — end-to-end crash-safety check on the real binary:
# start a training run with a durable run directory, SIGKILL it (no clean
# shutdown path, exactly like an OOM kill or power loss), then resume and
# assert the run continues from the persisted cursor to completion.
set -eu

cd "$(dirname "$0")/.."

WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

go build -o "$WORK/skipper-train" ./cmd/skipper-train

COMMON="-model vgg5 -strategy bptt -width 0.25 -T 8 -batch 2 -max-batches 8 \
        -pretrain=false -snapshot-every 2 -run-dir $WORK/state"

# Victim: enough epochs that it cannot finish before the kill lands.
"$WORK/skipper-train" $COMMON -epochs 200 >"$WORK/victim.log" 2>&1 &
PID=$!

# Wait for the first durable manifest, then SIGKILL mid-run.
i=0
while [ ! -f "$WORK/state/manifest.skpm" ]; do
    i=$((i + 1))
    if [ "$i" -gt 300 ]; then
        echo "FAIL: no manifest appeared before timeout" >&2
        cat "$WORK/victim.log" >&2
        exit 1
    fi
    sleep 0.1
done
kill -9 "$PID"
wait "$PID" 2>/dev/null || true

# Survivor: resume from the manifest and run to completion.
"$WORK/skipper-train" $COMMON -epochs 3 -resume >"$WORK/resume.log" 2>&1 || {
    echo "FAIL: resumed run exited non-zero" >&2
    cat "$WORK/resume.log" >&2
    exit 1
}
grep -q "resuming from" "$WORK/resume.log" || {
    echo "FAIL: resumed run did not report its cursor" >&2
    cat "$WORK/resume.log" >&2
    exit 1
}
# "peak device memory" is the last line of a run that completed normally.
grep -q "peak device memory" "$WORK/resume.log" || {
    echo "FAIL: resumed run did not reach the end of training" >&2
    cat "$WORK/resume.log" >&2
    exit 1
}

echo "kill-resume smoke: OK"
