#!/bin/sh
# router_smoke.sh — end-to-end serving-fleet check on the real binaries:
# train two tiny checkpoints, front three skipper-serve replicas with
# skipper-router, run an open-loop soak through the router, SIGTERM one
# replica mid-soak, canary the second checkpoint on 5% of sessions, and
# require (a) zero failed requests across the kill and the canary swap,
# (b) the canary auto-promoted (never rolled back) with every surviving
# replica on the new checkpoint, and (c) a sane end-to-end p99.
set -eu

cd "$(dirname "$0")/.."

WORK=$(mktemp -d)
PIDS=""
cleanup() {
    # shellcheck disable=SC2086
    kill $PIDS 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

go build -o "$WORK/skipper-train" ./cmd/skipper-train
go build -o "$WORK/skipper-serve" ./cmd/skipper-serve
go build -o "$WORK/skipper-router" ./cmd/skipper-router
go build -o "$WORK/skipper-routerctl" ./cmd/skipper-routerctl
go build -o "$WORK/skipper-loadgen" ./cmd/skipper-loadgen

# Two checkpoints for the same topology: the fleet baseline and the canary
# candidate (different seed, so the weights genuinely differ).
TRAIN="-model vgg5 -strategy bptt -width 0.25 -T 8 -batch 4 -max-batches 2 \
       -epochs 1 -pretrain=false"
"$WORK/skipper-train" $TRAIN -seed 11 -save "$WORK/base.skpw" \
    >"$WORK/train_base.log" 2>&1
"$WORK/skipper-train" $TRAIN -seed 12 -save "$WORK/v2.skpw" \
    >"$WORK/train_v2.log" 2>&1

HTTP_BASE=${ROUTER_SMOKE_PORT:-17880}
ROUTER_PORT=$((HTTP_BASE + 0))
R1_HTTP=$((HTTP_BASE + 1)); R1_FLEET=$((HTTP_BASE + 4))
R2_HTTP=$((HTTP_BASE + 2)); R2_FLEET=$((HTTP_BASE + 5))
R3_HTTP=$((HTTP_BASE + 3)); R3_FLEET=$((HTTP_BASE + 6))
ROUTER="http://127.0.0.1:$ROUTER_PORT"

fail() {
    echo "FAIL: $1" >&2
    for log in replica1 replica2 replica3 router loadgen; do
        echo "--- $log.log ---" >&2
        cat "$WORK/$log.log" >&2 || true
    done
    exit 1
}

SERVE="-model vgg5 -width 0.25 -weights $WORK/base.skpw -T 12 -workers 2 \
       -max-batch 8 -queue 64"
"$WORK/skipper-serve" $SERVE -addr "127.0.0.1:$R1_HTTP" \
    -fleet-addr "127.0.0.1:$R1_FLEET" >"$WORK/replica1.log" 2>&1 &
R1=$!; PIDS="$PIDS $R1"
"$WORK/skipper-serve" $SERVE -addr "127.0.0.1:$R2_HTTP" \
    -fleet-addr "127.0.0.1:$R2_FLEET" >"$WORK/replica2.log" 2>&1 &
R2=$!; PIDS="$PIDS $R2"
"$WORK/skipper-serve" $SERVE -addr "127.0.0.1:$R3_HTTP" \
    -fleet-addr "127.0.0.1:$R3_FLEET" >"$WORK/replica3.log" 2>&1 &
R3=$!; PIDS="$PIDS $R3"

wait_ready() { # URL NAME
    i=0
    until curl -sf "$1/readyz" >/dev/null 2>&1; do
        i=$((i + 1))
        [ "$i" -le 100 ] || fail "$2 never became ready"
        sleep 0.1
    done
}
wait_ready "http://127.0.0.1:$R1_HTTP" replica1
wait_ready "http://127.0.0.1:$R2_HTTP" replica2
wait_ready "http://127.0.0.1:$R3_HTTP" replica3

"$WORK/skipper-router" -addr "127.0.0.1:$ROUTER_PORT" \
    -backends "http://127.0.0.1:$R1_HTTP=127.0.0.1:$R1_FLEET,http://127.0.0.1:$R2_HTTP=127.0.0.1:$R2_FLEET,http://127.0.0.1:$R3_HTTP=127.0.0.1:$R3_FLEET" \
    -heartbeat 50ms -dead-after 2 -canary-min-requests 12 \
    >"$WORK/router.log" 2>&1 &
RT=$!; PIDS="$PIDS $RT"
wait_ready "$ROUTER" router

# Open-loop soak through the router: exponential arrivals, 64 distinct
# sessions for the hash ring. No -allow-shed — any failed or shed request
# makes the loadgen (and therefore this gate) exit non-zero.
"$WORK/skipper-loadgen" -url "$ROUTER" -open -qps 80 -duration 8s -n 0 \
    -sessions 64 -seed 7 -out "$WORK/report.json" >"$WORK/loadgen.log" 2>&1 &
LG=$!; PIDS="$PIDS $LG"

# Mid-soak fault: drain one replica; the router must remap its sessions to
# the survivors without surfacing a single error.
sleep 2
kill -TERM "$R3"

# Canary the second checkpoint on 5% of sessions. With ~6s of soak left at
# 80 qps the cohort comfortably clears -canary-min-requests, so a healthy
# canary auto-promotes fleet-wide before the soak ends.
sleep 1
"$WORK/skipper-routerctl" -router "$ROUTER" canary \
    -path "$WORK/v2.skpw" -fraction 0.05 >"$WORK/canary.json" 2>&1 \
    || fail "starting the canary failed: $(cat "$WORK/canary.json")"

wait "$LG" || fail "loadgen saw failed or shed requests through kill + canary swap"
wait "$R3" || fail "drained replica exited non-zero"

# The canary must have promoted (possibly a tick or two after the soak).
i=0
while :; do
    "$WORK/skipper-routerctl" -router "$ROUTER" fleet >"$WORK/fleet.json" \
        || fail "fleet status unavailable"
    [ "$(jq -r .canary.promotions "$WORK/fleet.json")" = "1" ] && break
    i=$((i + 1))
    [ "$i" -le 50 ] || fail "canary never promoted: $(cat "$WORK/fleet.json")"
    sleep 0.1
done
[ "$(jq -r .canary.rollbacks "$WORK/fleet.json")" = "0" ] \
    || fail "healthy canary was rolled back"
ON_V2=$(jq -r '[.backends[] | select(.state == "alive")
                | select(.model_path | endswith("v2.skpw"))] | length' \
        "$WORK/fleet.json")
[ "$ON_V2" = "2" ] || fail "expected both survivors on v2.skpw, got $ON_V2"
[ "$(jq -r '.ring | length' "$WORK/fleet.json")" = "2" ] \
    || fail "ring did not settle on the two survivors"

# Latency sanity: the soak ran far below capacity, so p99 must stay well
# under the serve default 2s request budget even on a loaded CI box.
P99=$(jq -r .latency_p99_ms "$WORK/report.json")
OKN=$(jq -r .ok "$WORK/report.json")
[ "$OKN" -gt 300 ] || fail "soak answered only $OKN requests"
jq -e '.latency_p99_ms < 1900' "$WORK/report.json" >/dev/null \
    || fail "p99 ${P99}ms is not sane for an underloaded fleet"

kill -TERM "$RT" 2>/dev/null || true
kill -TERM "$R1" "$R2" 2>/dev/null || true
wait "$RT" "$R1" "$R2" 2>/dev/null || true

echo "PASS: 3-replica fleet survived a mid-soak kill and a 5% canary promote ($OKN ok, p99 ${P99}ms)"
