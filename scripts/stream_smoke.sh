#!/bin/sh
# stream_smoke.sh — end-to-end streaming-session check on the real binaries:
# front two skipper-serve replicas (framed fleet listeners, durable session
# dirs) with skipper-router, stream paced event windows through router
# placement, SIGTERM one replica mid-stream, and require (a) every session
# finished with zero resets — the drain handoff moved membrane state, it
# never silently restarted, (b) at least one session visibly migrated to the
# surviving replica, and (c) the quiet windows actually took the leak-only
# skip path (the survivor's skipped-windows counter is non-zero).
set -eu

cd "$(dirname "$0")/.."

WORK=$(mktemp -d)
PIDS=""
cleanup() {
    # shellcheck disable=SC2086
    kill $PIDS 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

go build -o "$WORK/skipper-serve" ./cmd/skipper-serve
go build -o "$WORK/skipper-router" ./cmd/skipper-router
go build -o "$WORK/skipper-loadgen" ./cmd/skipper-loadgen

HTTP_BASE=${STREAM_SMOKE_PORT:-17900}
ROUTER_PORT=$((HTTP_BASE + 0)); PEER_PORT=$((HTTP_BASE + 1))
R1_HTTP=$((HTTP_BASE + 2)); R1_FLEET=$((HTTP_BASE + 4))
R2_HTTP=$((HTTP_BASE + 3)); R2_FLEET=$((HTTP_BASE + 5))
ROUTER="http://127.0.0.1:$ROUTER_PORT"

fail() {
    echo "FAIL: $1" >&2
    for log in replica1 replica2 router loadgen; do
        echo "--- $log.log ---" >&2
        cat "$WORK/$log.log" >&2 || true
    done
    exit 1
}

# Fresh deterministic init: both replicas build identical weights from the
# model name, which is exactly what session migration requires.
SERVE="-model customnet -width 0.25 -classes 4 -in-shape 2x8x8 -T 8 \
       -workers 1 -routers 127.0.0.1:$PEER_PORT -drain-timeout 10s"
"$WORK/skipper-serve" $SERVE -addr "127.0.0.1:$R1_HTTP" \
    -advertise-url "http://127.0.0.1:$R1_HTTP" \
    -fleet-addr "127.0.0.1:$R1_FLEET" -session-dir "$WORK/sess1" \
    >"$WORK/replica1.log" 2>&1 &
R1=$!; PIDS="$PIDS $R1"
"$WORK/skipper-serve" $SERVE -addr "127.0.0.1:$R2_HTTP" \
    -advertise-url "http://127.0.0.1:$R2_HTTP" \
    -fleet-addr "127.0.0.1:$R2_FLEET" -session-dir "$WORK/sess2" \
    >"$WORK/replica2.log" 2>&1 &
R2=$!; PIDS="$PIDS $R2"

wait_ready() { # URL NAME
    i=0
    until curl -sf "$1/readyz" >/dev/null 2>&1; do
        i=$((i + 1))
        [ "$i" -le 100 ] || fail "$2 never became ready"
        sleep 0.1
    done
}
wait_ready "http://127.0.0.1:$R1_HTTP" replica1
wait_ready "http://127.0.0.1:$R2_HTTP" replica2

"$WORK/skipper-router" -addr "127.0.0.1:$ROUTER_PORT" \
    -peer-addr "127.0.0.1:$PEER_PORT" \
    -backends "http://127.0.0.1:$R1_HTTP=127.0.0.1:$R1_FLEET,http://127.0.0.1:$R2_HTTP=127.0.0.1:$R2_FLEET" \
    -heartbeat 50ms -dead-after 2 >"$WORK/router.log" 2>&1 &
RT=$!; PIDS="$PIDS $RT"
wait_ready "$ROUTER" router

# Both backends must be on the ring before placement starts.
i=0
until [ "$(curl -sf "$ROUTER/v1/fleet" | jq -r '.ring | length')" = "2" ]; do
    i=$((i + 1))
    [ "$i" -le 50 ] || fail "backends never joined the ring"
    sleep 0.1
done

# 8 paced sessions through router placement: ~4s of streaming, half the
# windows quiet. The loadgen itself exits non-zero on any reset or failure.
"$WORK/skipper-loadgen" -stream -url "$ROUTER" -sessions 8 -windows 160 \
    -window-steps 6 -quiet-frac 0.5 -events-per-window 12 \
    -window-interval 25ms -seed 7 -out "$WORK/report.json" \
    >"$WORK/loadgen.log" 2>&1 &
LG=$!; PIDS="$PIDS $LG"

# Mid-stream fault: SIGTERM replica 1. It announces its drain over the peer
# channel; the router pulls its live sessions to replica 2 over the fleet
# channel while the clients reconnect, re-place, and resume — with
# RequireResume, so a lost membrane state would be a loud reset, not a
# silent restart.
sleep 1.5
kill -TERM "$R1"

wait "$LG" || fail "streaming loadgen saw resets or failures across the replica kill"
wait "$R1" || fail "drained replica exited non-zero"

OKN=$(jq -r .windows_ok "$WORK/report.json")
SKIPPED=$(jq -r .windows_skipped "$WORK/report.json")
MIGRATIONS=$(jq -r .migrations "$WORK/report.json")
RESETS=$(jq -r .resets "$WORK/report.json")
PAUSE=$(jq -r .max_pause_ms "$WORK/report.json")
[ "$OKN" = "1280" ] || fail "acked $OKN windows, want all 1280"
[ "$RESETS" = "0" ] || fail "$RESETS sessions lost membrane state"
[ "$MIGRATIONS" -ge 1 ] || fail "no session migrated off the killed replica"
[ "$SKIPPED" -ge 1 ] || fail "quiet workload skipped no windows"

# The survivor's own counters must agree: it imported sessions and its skip
# path fired.
METRICS=$(curl -sf "http://127.0.0.1:$R2_HTTP/metrics")
echo "$METRICS" | awk '$1=="skipper_stream_sessions_imported_total"{exit !($2>=1)}' \
    || fail "surviving replica imported no sessions"
echo "$METRICS" | awk '$1=="skipper_stream_windows_skipped_total"{exit !($2>=1)}' \
    || fail "surviving replica never took the leak-only skip path"

kill -TERM "$RT" 2>/dev/null || true
kill -TERM "$R2" 2>/dev/null || true
wait "$RT" "$R2" 2>/dev/null || true

echo "PASS: $OKN windows across a mid-stream replica kill ($MIGRATIONS migrations, $SKIPPED skipped, 0 resets, max pause ${PAUSE}ms)"
