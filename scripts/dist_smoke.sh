#!/bin/sh
# dist_smoke.sh — end-to-end distributed-training check on the real binary:
# run a coordinator plus two workers over localhost TCP (world 3) and a
# serial reference with -micro-batch 1, then assert every rank's final
# weights are byte-identical to the serial run's.
#
# World size equals the global batch (3), so every shard holds exactly one
# sample — the regime where the distributed reduction's addition order
# matches serial MicroBatch-1 accumulation bitwise (see internal/core
# ShardGrads). Any divergence, even one bit, fails the gate.
set -eu

cd "$(dirname "$0")/.."

WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

go build -o "$WORK/skipper-train" ./cmd/skipper-train

COMMON="-model vgg5 -strategy bptt -width 0.25 -T 8 -batch 3 -max-batches 4 \
        -epochs 2 -pretrain=false -seed 11"

PORT=${DIST_SMOKE_PORT:-17997}

"$WORK/skipper-train" $COMMON -dist-listen "127.0.0.1:$PORT" -dist-workers 2 \
    -save "$WORK/rank0.skpw" >"$WORK/coord.log" 2>&1 &
COORD=$!

"$WORK/skipper-train" $COMMON -dist-join "127.0.0.1:$PORT" \
    -save "$WORK/rank1.skpw" >"$WORK/worker1.log" 2>&1 &
W1=$!

"$WORK/skipper-train" $COMMON -dist-join "127.0.0.1:$PORT" \
    -save "$WORK/rank2.skpw" >"$WORK/worker2.log" 2>&1 &
W2=$!

fail() {
    echo "FAIL: $1" >&2
    for log in coord worker1 worker2; do
        echo "--- $log.log ---" >&2
        cat "$WORK/$log.log" >&2 || true
    done
    exit 1
}

wait "$COORD" || fail "coordinator exited non-zero"
wait "$W1" || fail "worker 1 exited non-zero"
wait "$W2" || fail "worker 2 exited non-zero"

# Serial reference: same run, one process, micro-batch 1.
"$WORK/skipper-train" $COMMON -micro-batch 1 -save "$WORK/serial.skpw" \
    >"$WORK/serial.log" 2>&1 || fail "serial reference exited non-zero"

for rank in rank0 rank1 rank2; do
    cmp "$WORK/$rank.skpw" "$WORK/serial.skpw" \
        || fail "$rank weights differ from the serial reference"
done

echo "PASS: distributed run (world 3) byte-identical to serial micro-batch-1 reference"
