#!/bin/sh
# dist_smoke.sh — end-to-end distributed-training check on the real binary:
# run a coordinator plus two workers over localhost TCP (world 3) under each
# exchange topology — star, and ring with delta-compressed gradient frames —
# plus a serial reference with -micro-batch 1, then assert every rank's
# final weights are byte-identical to the serial run's.
#
# World size equals the global batch (3), so every shard holds exactly one
# sample — the regime where the distributed reduction's addition order
# matches serial MicroBatch-1 accumulation bitwise (see internal/core
# ShardGrads). Any divergence, even one bit, fails the gate. The ring pass
# doubles as the wire-level gate for the directional ring all-reduce and the
# sparse delta codec: both must round-trip gradients exactly.
set -eu

cd "$(dirname "$0")/.."

WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

go build -o "$WORK/skipper-train" ./cmd/skipper-train

COMMON="-model vgg5 -strategy bptt -width 0.25 -T 8 -batch 3 -max-batches 4 \
        -epochs 2 -pretrain=false -seed 11"

PORT=${DIST_SMOKE_PORT:-17997}

fail() {
    echo "FAIL: $1" >&2
    for log in "$WORK"/*.log; do
        echo "--- $(basename "$log") ---" >&2
        cat "$log" >&2 || true
    done
    exit 1
}

# run_fleet <tag> <port> [extra flags...] — coordinator + 2 workers, saving
# per-rank weights as <tag>-rank{0,1,2}.skpw.
run_fleet() {
    tag=$1; port=$2; shift 2

    "$WORK/skipper-train" $COMMON "$@" -dist-listen "127.0.0.1:$port" \
        -dist-workers 2 -save "$WORK/$tag-rank0.skpw" \
        >"$WORK/$tag-coord.log" 2>&1 &
    COORD=$!

    "$WORK/skipper-train" $COMMON "$@" -dist-join "127.0.0.1:$port" \
        -save "$WORK/$tag-rank1.skpw" >"$WORK/$tag-worker1.log" 2>&1 &
    W1=$!

    "$WORK/skipper-train" $COMMON "$@" -dist-join "127.0.0.1:$port" \
        -save "$WORK/$tag-rank2.skpw" >"$WORK/$tag-worker2.log" 2>&1 &
    W2=$!

    wait "$COORD" || fail "$tag coordinator exited non-zero"
    wait "$W1" || fail "$tag worker 1 exited non-zero"
    wait "$W2" || fail "$tag worker 2 exited non-zero"
}

run_fleet star "$PORT"
run_fleet ring $((PORT + 1)) -dist-topology ring -dist-compress delta

# Serial reference: same run, one process, micro-batch 1.
"$WORK/skipper-train" $COMMON -micro-batch 1 -save "$WORK/serial.skpw" \
    >"$WORK/serial.log" 2>&1 || fail "serial reference exited non-zero"

for tag in star ring; do
    for rank in rank0 rank1 rank2; do
        cmp "$WORK/$tag-$rank.skpw" "$WORK/serial.skpw" \
            || fail "$tag $rank weights differ from the serial reference"
    done
done

echo "PASS: star and ring+delta runs (world 3) byte-identical to serial micro-batch-1 reference"
