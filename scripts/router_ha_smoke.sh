#!/bin/sh
# router_ha_smoke.sh — replicated-router-tier check on the real binaries:
# three peered skipper-router processes front three skipper-serve replicas.
# Mid-soak, one router dies ungracefully (kill -9; clients fail over to the
# next router URL) and one replica performs a backend-initiated drain handoff
# (SIGTERM → drain announced over the router peer channels before the process
# stops accepting). A canary started through a surviving router must promote
# and replicate to the other survivor. The gate requires (a) zero failed
# requests through all of it, (b) the drained replica exiting cleanly with its
# announcement acked by both survivors, and (c) the two surviving routers
# converging on identical fleet views — membership, ring, and canary history —
# within 2 seconds.
set -eu

cd "$(dirname "$0")/.."

WORK=$(mktemp -d)
PIDS=""
cleanup() {
    # shellcheck disable=SC2086
    kill $PIDS 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

go build -o "$WORK/skipper-train" ./cmd/skipper-train
go build -o "$WORK/skipper-serve" ./cmd/skipper-serve
go build -o "$WORK/skipper-router" ./cmd/skipper-router
go build -o "$WORK/skipper-routerctl" ./cmd/skipper-routerctl
go build -o "$WORK/skipper-loadgen" ./cmd/skipper-loadgen

TRAIN="-model vgg5 -strategy bptt -width 0.25 -T 8 -batch 4 -max-batches 2 \
       -epochs 1 -pretrain=false"
"$WORK/skipper-train" $TRAIN -seed 11 -save "$WORK/base.skpw" \
    >"$WORK/train_base.log" 2>&1
"$WORK/skipper-train" $TRAIN -seed 12 -save "$WORK/v2.skpw" \
    >"$WORK/train_v2.log" 2>&1

BASE=${ROUTER_HA_SMOKE_PORT:-17900}
RT1_HTTP=$((BASE + 0)); RT1_PEER=$((BASE + 3))
RT2_HTTP=$((BASE + 1)); RT2_PEER=$((BASE + 4))
RT3_HTTP=$((BASE + 2)); RT3_PEER=$((BASE + 5))
R1_HTTP=$((BASE + 6)); R1_FLEET=$((BASE + 9))
R2_HTTP=$((BASE + 7)); R2_FLEET=$((BASE + 10))
R3_HTTP=$((BASE + 8)); R3_FLEET=$((BASE + 11))
PEERS="127.0.0.1:$RT1_PEER,127.0.0.1:$RT2_PEER,127.0.0.1:$RT3_PEER"
RT1="http://127.0.0.1:$RT1_HTTP"
RT2="http://127.0.0.1:$RT2_HTTP"
RT3="http://127.0.0.1:$RT3_HTTP"

fail() {
    echo "FAIL: $1" >&2
    for log in replica1 replica2 replica3 router1 router2 router3 loadgen; do
        echo "--- $log.log ---" >&2
        cat "$WORK/$log.log" >&2 || true
    done
    exit 1
}

# Replicas carry the full router peer list so a SIGTERM announces the drain
# to every router before the listener closes.
SERVE="-model vgg5 -width 0.25 -weights $WORK/base.skpw -T 12 -workers 2 \
       -max-batch 8 -queue 64 -routers $PEERS"
"$WORK/skipper-serve" $SERVE -addr "127.0.0.1:$R1_HTTP" \
    -advertise-url "http://127.0.0.1:$R1_HTTP" \
    -fleet-addr "127.0.0.1:$R1_FLEET" >"$WORK/replica1.log" 2>&1 &
R1=$!; PIDS="$PIDS $R1"
"$WORK/skipper-serve" $SERVE -addr "127.0.0.1:$R2_HTTP" \
    -advertise-url "http://127.0.0.1:$R2_HTTP" \
    -fleet-addr "127.0.0.1:$R2_FLEET" >"$WORK/replica2.log" 2>&1 &
R2=$!; PIDS="$PIDS $R2"
"$WORK/skipper-serve" $SERVE -addr "127.0.0.1:$R3_HTTP" \
    -advertise-url "http://127.0.0.1:$R3_HTTP" \
    -fleet-addr "127.0.0.1:$R3_FLEET" >"$WORK/replica3.log" 2>&1 &
R3=$!; PIDS="$PIDS $R3"

wait_ready() { # URL NAME
    i=0
    until curl -sf "$1/readyz" >/dev/null 2>&1; do
        i=$((i + 1))
        [ "$i" -le 100 ] || fail "$2 never became ready"
        sleep 0.1
    done
}
wait_ready "http://127.0.0.1:$R1_HTTP" replica1
wait_ready "http://127.0.0.1:$R2_HTTP" replica2
wait_ready "http://127.0.0.1:$R3_HTTP" replica3

BACKENDS="http://127.0.0.1:$R1_HTTP=127.0.0.1:$R1_FLEET,http://127.0.0.1:$R2_HTTP=127.0.0.1:$R2_FLEET,http://127.0.0.1:$R3_HTTP=127.0.0.1:$R3_FLEET"
start_router() { # HTTP_PORT PEER_PORT OTHER_PEERS LOG
    "$WORK/skipper-router" -addr "127.0.0.1:$1" \
        -backends "$BACKENDS" \
        -heartbeat 50ms -dead-after 2 -sync-interval 25ms \
        -canary-min-requests 12 \
        -peer-addr "127.0.0.1:$2" -peers "$3" >"$WORK/$4.log" 2>&1 &
    PIDS="$PIDS $!"
}
start_router "$RT1_HTTP" "$RT1_PEER" "127.0.0.1:$RT2_PEER,127.0.0.1:$RT3_PEER" router1
RT1_PID=$!
start_router "$RT2_HTTP" "$RT2_PEER" "127.0.0.1:$RT1_PEER,127.0.0.1:$RT3_PEER" router2
RT2_PID=$!
start_router "$RT3_HTTP" "$RT3_PEER" "127.0.0.1:$RT1_PEER,127.0.0.1:$RT2_PEER" router3
RT3_PID=$!
wait_ready "$RT1" router1
wait_ready "$RT2" router2
wait_ready "$RT3" router3

# Open-loop soak offered to the whole router tier: the loadgen fails a
# request over to the next router URL on a transport error, so a dead router
# must never surface as a failed request.
"$WORK/skipper-loadgen" -url "$RT1,$RT2,$RT3" -open -qps 80 -duration 8s \
    -n 0 -sessions 64 -seed 7 -out "$WORK/report.json" \
    >"$WORK/loadgen.log" 2>&1 &
LG=$!; PIDS="$PIDS $LG"

# Mid-soak fault 1: one router dies without ceremony. Quorum membership means
# the survivors keep the identical ring; clients fail over.
sleep 2
kill -9 "$RT1_PID"

# Mid-soak fault 2: one replica shuts down gracefully. Its SIGTERM handler
# announces the drain over the router peer channels (the dead router cannot
# ack), so the survivors vacate its arcs before a heartbeat could miss.
sleep 1
kill -TERM "$R3"

# Canary through a surviving router, addressed at the whole tier: routerctl
# must skip the dead router and note which peer answered. Gossip replicates
# the run — and later the promotion — to the other survivor.
sleep 1
"$WORK/skipper-routerctl" -router "$RT1,$RT2" canary \
    -path "$WORK/v2.skpw" -fraction 0.05 \
    >"$WORK/canary.json" 2>"$WORK/canaryctl.log" \
    || fail "starting the canary failed: $(cat "$WORK/canary.json" "$WORK/canaryctl.log")"
grep -q "answered by $RT2" "$WORK/canaryctl.log" \
    || fail "routerctl did not report failing over to $RT2: $(cat "$WORK/canaryctl.log")"

wait "$LG" || fail "loadgen saw failed or shed requests through the router kill + drain handoff"
wait "$R3" || fail "drained replica exited non-zero"
grep -q "drain announced to 2/3 routers" "$WORK/replica3.log" \
    || fail "drain announcement was not acked by exactly the two surviving routers"
grep -q "drained cleanly" "$WORK/replica3.log" \
    || fail "drained replica did not finish its in-flight queue"

jq -e '.client_failovers >= 1' "$WORK/report.json" >/dev/null \
    || fail "soak never failed over off the killed router: $(cat "$WORK/report.json")"

# The canary must promote on the surviving owner (possibly a tick or two
# after the soak ends).
i=0
while :; do
    "$WORK/skipper-routerctl" -router "$RT2" fleet >"$WORK/fleet2.json" \
        || fail "fleet status unavailable on router2"
    [ "$(jq -r .canary.promotions "$WORK/fleet2.json")" = "1" ] && break
    i=$((i + 1))
    [ "$i" -le 50 ] || fail "canary never promoted: $(cat "$WORK/fleet2.json")"
    sleep 0.1
done
[ "$(jq -r .canary.rollbacks "$WORK/fleet2.json")" = "0" ] \
    || fail "healthy canary was rolled back"

# Convergence: within 2s the survivors must agree on the replicated fleet
# state — backend states, ring membership, canary counters, and the canary
# event history. Peer-local detail (router id, RTTs, sync ages) is excluded.
SIG='{backends: [.backends[] | {url, state}] | sort_by(.url),
      ring: .ring | sort,
      promotions: .canary.promotions, rollbacks: .canary.rollbacks,
      events: [.canary.history[].action]}'
i=0
while :; do
    "$WORK/skipper-routerctl" -router "$RT2" fleet >"$WORK/fleet2.json" \
        || fail "fleet status unavailable on router2"
    "$WORK/skipper-routerctl" -router "$RT3" fleet >"$WORK/fleet3.json" \
        || fail "fleet status unavailable on router3"
    jq -S "$SIG" "$WORK/fleet2.json" >"$WORK/sig2.json"
    jq -S "$SIG" "$WORK/fleet3.json" >"$WORK/sig3.json"
    cmp -s "$WORK/sig2.json" "$WORK/sig3.json" && break
    i=$((i + 1))
    [ "$i" -le 20 ] || {
        echo "--- router2 view ---" >&2; cat "$WORK/sig2.json" >&2
        echo "--- router3 view ---" >&2; cat "$WORK/sig3.json" >&2
        fail "surviving routers did not converge on one fleet view within 2s"
    }
    sleep 0.1
done

# The converged view must show the drained replica out of the ring and the
# two survivors promoted onto v2.
[ "$(jq -r '.ring | length' "$WORK/fleet2.json")" = "2" ] \
    || fail "ring did not settle on the two surviving replicas"
jq -e --arg u "http://127.0.0.1:$R3_HTTP" \
    '.backends[] | select(.url == $u) | .state != "alive"' \
    "$WORK/fleet2.json" >/dev/null \
    || fail "drained replica is still marked alive"
ON_V2=$(jq -r '[.backends[] | select(.state == "alive")
                | select(.model_path | endswith("v2.skpw"))] | length' \
        "$WORK/fleet2.json")
[ "$ON_V2" = "2" ] || fail "expected both survivors on v2.skpw, got $ON_V2"

P99=$(jq -r .latency_p99_ms "$WORK/report.json")
OKN=$(jq -r .ok "$WORK/report.json")
FOV=$(jq -r .client_failovers "$WORK/report.json")
[ "$OKN" -gt 300 ] || fail "soak answered only $OKN requests"
jq -e '.latency_p99_ms < 1900' "$WORK/report.json" >/dev/null \
    || fail "p99 ${P99}ms is not sane for an underloaded fleet"

kill -TERM "$RT2_PID" "$RT3_PID" 2>/dev/null || true
kill -TERM "$R1" "$R2" 2>/dev/null || true
wait "$RT2_PID" "$RT3_PID" "$R1" "$R2" 2>/dev/null || true

echo "PASS: router tier survived kill -9 of a peer and a drain handoff ($OKN ok, $FOV failovers, p99 ${P99}ms)"
