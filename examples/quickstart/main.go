// Quickstart: train a small spiking VGG on the synthetic CIFAR-10 substitute
// with Skipper (activation checkpointing + time-skipping) and watch the
// memory and compute savings against baseline BPTT.
package main

import (
	"fmt"
	"log"
	"time"

	"skipper"
)

func main() {
	const (
		T     = 36 // simulation timesteps
		batch = 8
		C     = 4 // temporal checkpoints
	)

	// The Runtime owns the shared compute pool (all cores here) and the root
	// seed; every trainer below runs its kernels on it, bit-identically at
	// any thread count.
	rt := skipper.NewRuntime(skipper.WithSeed(1))
	defer rt.Close()
	data, err := rt.OpenDataset("cifar10")
	if err != nil {
		log.Fatal(err)
	}

	// Train the same topology under three regimes and compare.
	for _, mode := range []struct {
		name  string
		strat skipper.Strategy
	}{
		{"baseline BPTT", skipper.BPTT{}},
		{"checkpointed", skipper.Checkpoint{C: C}},
		{"skipper", skipper.Skipper{C: C, P: 25}},
	} {
		net, err := rt.BuildModel("vgg5", skipper.ModelOptions{
			Width:   0.5,
			Classes: data.Classes(),
			InShape: data.InShape(),
		})
		if err != nil {
			log.Fatal(err)
		}
		dev := skipper.NewDevice(skipper.DeviceConfig{}) // unlimited, accounting only
		tr, err := rt.NewTrainer(net, data, mode.strat, skipper.Config{
			T: T, Batch: batch, Device: dev, MaxBatchesPerEpoch: 12,
		})
		if err != nil {
			log.Fatal(err)
		}

		start := time.Now()
		ep, err := tr.TrainEpoch()
		if err != nil {
			log.Fatal(err)
		}
		_, acc, err := tr.Evaluate(6)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-16s loss %.3f  test-acc %5.2f%%  time %8s  peak activations %10s  skipped %d steps\n",
			mode.name, ep.MeanLoss(), 100*acc, time.Since(start).Round(time.Millisecond),
			skipper.FormatBytes(dev.PeakBy(skipper.MemActivations)), ep.SkippedSteps)
		tr.Close()
	}
}
