// Autotune: let the library pick the training strategy for a memory budget.
// The chooser applies the paper's design rules — BPTT when the full unroll
// fits, checkpointing at the √T optimum when it doesn't (Sec. V-A), and
// Skipper with the smallest admissible skip percentile (Eq. 7) when even
// checkpointing is too large — then the run is verified against the budget
// by the device accountant.
package main

import (
	"fmt"
	"log"

	"skipper"
)

func main() {
	const (
		T     = 48
		batch = 4
	)
	rt := skipper.NewRuntime(skipper.WithSeed(11))
	defer rt.Close()
	data, err := rt.OpenDataset("cifar10")
	if err != nil {
		log.Fatal(err)
	}
	net, err := rt.BuildModel("vgg5", skipper.ModelOptions{
		Width: 0.5, Classes: data.Classes(), InShape: data.InShape(),
	})
	if err != nil {
		log.Fatal(err)
	}
	cfg := skipper.Config{T: T, Batch: batch, MaxBatchesPerEpoch: 4}

	// Sweep budgets from roomy to cramped and see the recommendation change.
	unlimited, err := skipper.AutoTune(net, data.InShape(), cfg, 0)
	if err != nil {
		log.Fatal(err)
	}
	budgets := []int64{0, unlimited.PredictedPeak * 7 / 10, unlimited.PredictedPeak * 35 / 100}

	for _, budget := range budgets {
		plan, err := skipper.AutoTune(net, data.InShape(), cfg, budget)
		if err != nil {
			fmt.Printf("budget %10s: no plan (%v)\n", skipper.FormatBytes(budget), err)
			continue
		}
		label := "unlimited"
		if budget > 0 {
			label = skipper.FormatBytes(budget)
		}
		fmt.Printf("budget %10s -> %-20s predicted %10s  (%s)\n",
			label, plan.Strategy.Name(), skipper.FormatBytes(plan.PredictedPeak), plan.Reason)

		// Prove the plan fits by running it against the budget.
		runCfg := cfg
		runCfg.Device = skipper.NewDevice(skipper.DeviceConfig{Budget: budget})
		tr, err := rt.NewTrainer(net, data, plan.Strategy, runCfg)
		if err != nil {
			log.Fatalf("tuned plan failed to construct: %v", err)
		}
		if _, err := tr.TrainEpoch(); err != nil {
			log.Fatalf("tuned plan OOMed: %v", err)
		}
		fmt.Printf("                -> ran 4 batches, peak %s within budget\n",
			skipper.FormatBytes(runCfg.Device.PeakReserved()))
		tr.Close()
	}
}
