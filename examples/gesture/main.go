// Gesture: action recognition on the synthetic DVS-Gesture event stream —
// the paper's headline neuromorphic workload (LeNet, Table I / Figs 8–9).
// Event-camera data is natively temporal and sparse, which is exactly what
// Skipper's Spike Activity Monitor exploits: quiet timesteps are skipped
// during recomputation.
package main

import (
	"fmt"
	"log"

	"skipper"
)

func main() {
	const (
		T      = 36
		batch  = 8
		epochs = 3
	)

	rt := skipper.NewRuntime(skipper.WithSeed(7))
	defer rt.Close()
	data, err := rt.OpenDataset("dvsgesture")
	if err != nil {
		log.Fatal(err)
	}
	net, err := rt.BuildModel("lenet", skipper.ModelOptions{
		Width:   0.5,
		Classes: data.Classes(), // 11 gesture classes
		InShape: data.InShape(), // 2 polarity channels
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("LeNet on %s: %d gesture classes, L_n=%d, Eq.7 skip bound %.0f%%\n",
		data.Name(), data.Classes(), net.StatefulCount(),
		skipper.MaxSkipPercent(T, 2, net.StatefulCount()))

	dev := skipper.NewDevice(skipper.DeviceConfig{})
	tr, err := rt.NewTrainer(net, data, skipper.Skipper{C: 2, P: 25}, skipper.Config{
		T: T, Batch: batch, Device: dev, MaxBatchesPerEpoch: 20,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer tr.Close()

	for e := 1; e <= epochs; e++ {
		ep, err := tr.TrainEpoch()
		if err != nil {
			log.Fatal(err)
		}
		_, acc, err := tr.Evaluate(8)
		if err != nil {
			log.Fatal(err)
		}
		skipped := 0.0
		if total := ep.SkippedSteps + ep.RecomputedSteps; total > 0 {
			skipped = 100 * float64(ep.SkippedSteps) / float64(total)
		}
		fmt.Printf("epoch %d: loss %.3f train-acc %5.2f%% test-acc %5.2f%% (skipped %.0f%% of recompute steps)\n",
			e, ep.MeanLoss(), 100*ep.Accuracy(), 100*acc, skipped)
	}
	fmt.Printf("peak memory: %s reserved, activations %s\n",
		skipper.FormatBytes(dev.PeakReserved()),
		skipper.FormatBytes(dev.PeakBy(skipper.MemActivations)))

	conf, err := tr.EvaluateConfusion(8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("per-gesture recall: ")
	for k, r := range conf.PerClassRecall() {
		fmt.Printf("g%d %.0f%% ", k, 100*r)
	}
	fmt.Println()
}
