// Edge: the paper's Jetson Nano study (Fig 15) in miniature. On a device
// with a small unified-memory budget plus slow swap, the baseline only fits
// tiny batches; checkpointing fits larger ones and Skipper larger still —
// and because bigger batches amortise fixed costs, the feasible-batch win
// turns directly into lower training latency per epoch.
package main

import (
	"errors"
	"fmt"
	"log"
	"time"

	"skipper"
)

func main() {
	const (
		T = 30
		C = 2
	)
	rt := skipper.NewRuntime(skipper.WithSeed(5))
	defer rt.Close()
	data, err := rt.OpenDataset("cifar10")
	if err != nil {
		log.Fatal(err)
	}

	// Size the "edge device" so the baseline only fits the smallest batch.
	probe, err := measure(rt, data, skipper.BPTT{}, T, 1, skipper.DeviceConfig{})
	if err != nil {
		log.Fatal(err)
	}
	edge := skipper.DeviceConfig{
		Budget:      probe.peak * 13 / 10,
		SwapBytes:   probe.peak,
		SwapPenalty: 3,
	}
	fmt.Printf("edge device: %s memory + %s swap (penalty 3x)\n\n",
		skipper.FormatBytes(edge.Budget), skipper.FormatBytes(edge.SwapBytes))
	fmt.Printf("%4s %-18s %14s %16s\n", "B", "strategy", "memory", "latency/epoch")

	for _, B := range []int{1, 2, 4, 8} {
		for _, strat := range []skipper.Strategy{
			skipper.BPTT{},
			skipper.Checkpoint{C: C},
			skipper.Skipper{C: C, P: 25},
		} {
			m, err := measure(rt, data, strat, T, B, edge)
			switch {
			case err == nil:
				// Swap residency applies the device's bandwidth penalty.
				perEpoch := time.Duration(float64(m.perBatch) * m.slowdown * float64(256/B))
				fmt.Printf("%4d %-18s %14s %16s\n", B, name(strat),
					skipper.FormatBytes(m.peak), perEpoch.Round(time.Millisecond))
			case errors.Is(err, skipper.ErrOutOfMemory):
				fmt.Printf("%4d %-18s %14s %16s\n", B, name(strat), "OOM", "—")
			default:
				log.Fatal(err)
			}
		}
	}
}

func name(s skipper.Strategy) string { return s.Name() }

type result struct {
	peak     int64
	perBatch time.Duration
	slowdown float64
}

func measure(rt *skipper.Runtime, data skipper.Dataset, strat skipper.Strategy, T, B int, devCfg skipper.DeviceConfig) (result, error) {
	net, err := rt.BuildModel("vgg5", skipper.ModelOptions{
		Width: 0.5, Classes: data.Classes(), InShape: data.InShape(),
	})
	if err != nil {
		return result{}, err
	}
	dev := skipper.NewDevice(devCfg)
	tr, err := rt.NewTrainer(net, data, strat, skipper.Config{
		T: T, Batch: B, Device: dev, MaxBatchesPerEpoch: 2,
	})
	if err != nil {
		return result{}, err
	}
	defer tr.Close()
	start := time.Now()
	ep, err := tr.TrainEpoch()
	if err != nil {
		return result{}, err
	}
	return result{
		peak:     dev.PeakReserved(),
		perBatch: time.Duration(int64(time.Since(start)) / int64(ep.Batches)),
		slowdown: dev.SlowdownFactor(),
	}, nil
}
