// Scaling: the paper's Fig 14 in miniature. Under a fixed device budget the
// baseline's activation memory grows linearly with the time horizon T and
// soon overflows; temporal checkpointing grows sub-linearly and Skipper
// slower still, so they keep training at horizons the baseline cannot reach.
package main

import (
	"errors"
	"fmt"
	"log"

	"skipper"
)

func main() {
	const (
		baseT = 24
		batch = 4
		C     = 2
	)
	rt := skipper.NewRuntime(skipper.WithSeed(3))
	defer rt.Close()
	data, err := rt.OpenDataset("cifar10")
	if err != nil {
		log.Fatal(err)
	}

	// Calibrate a budget from the baseline's footprint at the base horizon.
	basePeak, _, err := runOnce(rt, data, skipper.BPTT{}, baseT, batch, 0)
	if err != nil {
		log.Fatal(err)
	}
	budget := basePeak * 5 / 2
	fmt.Printf("device budget fixed at %s (2.5x the baseline at T=%d)\n\n", skipper.FormatBytes(budget), baseT)
	fmt.Printf("%6s %16s %16s %16s\n", "T", "baseline", "checkpointed", "skipper")

	for _, mult := range []int{1, 2, 4, 6} {
		T := baseT * mult
		row := fmt.Sprintf("%6d", T)
		for _, strat := range []skipper.Strategy{
			skipper.BPTT{},
			skipper.Checkpoint{C: C},
			skipper.Skipper{C: C, P: autoP(T, C)},
		} {
			peak, _, err := runOnce(rt, data, strat, T, batch, budget)
			switch {
			case err == nil:
				row += fmt.Sprintf(" %16s", skipper.FormatBytes(peak))
			case errors.Is(err, skipper.ErrOutOfMemory):
				row += fmt.Sprintf(" %16s", "OOM")
			default:
				log.Fatal(err)
			}
		}
		fmt.Println(row)
	}
}

// autoP picks 85% of the Eq. 7 skip bound for the VGG5 topology.
func autoP(T, C int) float64 {
	return float64(int(0.85 * skipper.MaxSkipPercent(T, C, 6)))
}

// runOnce trains a single batch under the strategy, returning the peak
// reserved memory.
func runOnce(rt *skipper.Runtime, data skipper.Dataset, strat skipper.Strategy, T, batch int, budget int64) (int64, float64, error) {
	net, err := rt.BuildModel("vgg5", skipper.ModelOptions{
		Width: 0.5, Classes: data.Classes(), InShape: data.InShape(),
	})
	if err != nil {
		return 0, 0, err
	}
	dev := skipper.NewDevice(skipper.DeviceConfig{Budget: budget})
	tr, err := rt.NewTrainer(net, data, strat, skipper.Config{
		T: T, Batch: batch, Device: dev, MaxBatchesPerEpoch: 1,
	})
	if err != nil {
		return 0, 0, err
	}
	defer tr.Close()
	ep, err := tr.TrainEpoch()
	if err != nil {
		return 0, 0, err
	}
	return dev.PeakReserved(), ep.MeanLoss(), nil
}
